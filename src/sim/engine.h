// Deterministic synchronous execution engine.
//
// Executes the model of §4.1: at every pulse all processors step
// simultaneously; messages sent at pulse t are delivered at pulse t+1;
// delivery respects the communication graph. The engine also implements the
// fault model: a designated Byzantine set (whose Processor implementations
// may do anything) and transient faults (state corruption of every processor
// plus arbitrary in-flight messages).
//
// The pulse loop is allocation-free in steady state (double-buffered inboxes,
// persistent per-processor outboxes that keep their high-water capacity) and
// payloads are zero-copy (one refcounted buffer per broadcast, aliased by
// every recipient — see common::Shared_payload). With Engine_config{threads}
// > 1 the pulse runs on a worker pool: each worker steps a contiguous slice
// of processors into private staging rows, then a sender-id-ordered gather
// rebuilds every inbox exactly as the single-thread loop would have, so an
// N-thread run is bit-identical to the 1-thread run (same delivery order,
// same stats, same verdicts downstream).
//
// An adversarial Net_model replaces the one-pulse delivery rule with timed
// delivery: every validated message gets a pure-function verdict (drop, or a
// delay d in [1, delta]) and is routed into a delta-slot delivery wheel; the
// slot due at pulse p becomes the inboxes consumed at p. The transport stamps
// Message::sent_at on every validated message, so no sender — Byzantine
// included — can forge a timestamp, and receivers may trust that message age
// is always < delta. The parallel path stages per (slice, delay, recipient)
// and gathers per recipient in (delay, slice) order, reproducing the
// sequential wheel order exactly: the determinism contract holds under loss,
// reorder, and partitions. A clean model (the default) bypasses the wheel
// entirely — the classic paths run unchanged.
#ifndef GA_SIM_ENGINE_H
#define GA_SIM_ENGINE_H

#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "common/executor.h"
#include "sim/graph.h"
#include "sim/net_model.h"
#include "sim/processor.h"

namespace ga::telemetry {
class Tracer;
}

namespace ga::sim {

/// Message/byte accounting for the benchmark harness. `messages` and
/// `payload_bytes` count offered traffic (validated sends); `dropped` counts
/// the subset the Net_model lost and `delayed` the subset it deferred past
/// the one-pulse rule (delay > 1) — both always 0 under the clean model.
struct Traffic_stats {
    std::int64_t pulses = 0;
    std::int64_t messages = 0;
    std::int64_t payload_bytes = 0;
    std::int64_t dropped = 0;
    std::int64_t delayed = 0;

    friend bool operator==(const Traffic_stats&, const Traffic_stats&) = default;
};

/// Execution knobs. Thread count is result-invariant: it partitions the pulse
/// across workers but never changes what the pulse computes.
struct Engine_config {
    int threads = 1;
};

/// Cross-boundary hook for the wire layer (src/wire/): when a link is
/// attached, every pulse's delivered inboxes cross it right before the
/// processors consume them — `inboxes[r]` holds recipient r's messages and
/// the link must leave each message's identity (from, to, sent_at, payload
/// bytes) intact, in order. The call runs on the coordinating thread after
/// delivery is finalized, so a link is sequenced against both the worker
/// pool and the harness: result-invariant by contract, observable only in
/// wall clock and in the link's own accounting.
class Pulse_link {
public:
    virtual ~Pulse_link() = default;
    virtual void cross_pulse(std::vector<std::vector<Message>>& inboxes, common::Pulse at) = 0;
};

class Engine {
public:
    /// The graph fixes both the system size and who can talk to whom; the net
    /// model fixes how (and whether) each validated message is delivered.
    explicit Engine(Graph graph, common::Rng rng = common::Rng{0}, Engine_config config = {},
                    Net_model net = {});

    /// Jobs capture `this`, so the engine must stay put once built.
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;
    Engine(Engine&&) = delete;
    Engine& operator=(Engine&&) = delete;

    /// Install the processor with id = number of processors installed so far.
    /// All `graph.size()` slots must be filled before running.
    void install(std::unique_ptr<Processor> processor, bool byzantine = false);

    [[nodiscard]] int size() const { return graph_.size(); }
    [[nodiscard]] const Graph& graph() const { return graph_; }
    [[nodiscard]] bool is_byzantine(common::Processor_id id) const;
    [[nodiscard]] int byzantine_count() const;
    [[nodiscard]] common::Pulse now() const { return pulse_; }
    [[nodiscard]] const Traffic_stats& stats() const { return stats_; }

    /// Messages sitting in the timed-delivery wheel waiting for a future
    /// pulse (0 under the clean model, which delivers everything next pulse).
    [[nodiscard]] std::int64_t in_flight() const;

    /// Resize the worker pool (>= 1). Callable between pulses at any time;
    /// has no effect on results, only on wall-clock speed.
    void set_threads(int threads);
    [[nodiscard]] int threads() const { return config_.threads; }

    /// Replace the net model. Only callable before the first pulse: the wheel
    /// geometry and every message's fate are part of the run's identity.
    void set_net_model(Net_model net);
    [[nodiscard]] const Net_model& net() const { return net_; }

    /// Attach the wire link every delivered pulse batch crosses (nullptr
    /// detaches — messages then stay in place, the historical behavior).
    /// Only callable before the first pulse, like set_net_model: the
    /// boundary is part of the run's shape even though a conforming link
    /// never changes results.
    void set_link(Pulse_link* link);
    [[nodiscard]] Pulse_link* link() const { return link_; }

    /// Attach a span recorder (nullptr detaches). The engine then traces its
    /// own fault-model activity — net burst/partition windows as spans,
    /// transient faults as zero-length markers — onto the caller's track.
    /// Observation only: a traced run is bit-identical to an untraced one.
    void set_tracer(telemetry::Tracer* tracer);
    [[nodiscard]] telemetry::Tracer* tracer() const { return tracer_; }

    /// Typed access to an installed processor (tests and result harvesting).
    [[nodiscard]] Processor& processor(common::Processor_id id);
    [[nodiscard]] const Processor& processor(common::Processor_id id) const;

    /// Throws Contract_error naming the offending slot when the processor at
    /// `id` is not a T (e.g. asking a Byzantine slot for its honest replica).
    template <typename T>
    [[nodiscard]] T& processor_as(common::Processor_id id)
    {
        T* typed = dynamic_cast<T*>(&processor(id));
        if (typed == nullptr) throw_processor_type_mismatch(id, typeid(T).name());
        return *typed;
    }
    template <typename T>
    [[nodiscard]] const T& processor_as(common::Processor_id id) const
    {
        const T* typed = dynamic_cast<const T*>(&processor(id));
        if (typed == nullptr) throw_processor_type_mismatch(id, typeid(T).name());
        return *typed;
    }

    /// Execute one common pulse for the whole system.
    void run_pulse();

    /// Execute `count` pulses.
    void run(common::Pulse count);

    /// Transient fault (§4): corrupt the state of every processor and replace
    /// the in-flight messages with arbitrary garbage. Garbling is
    /// copy-on-write per delivery, so corrupting one recipient's copy of a
    /// broadcast never touches the other recipients' copies.
    void inject_transient_fault();

    /// Corrupt a single processor's state.
    void inject_fault_at(common::Processor_id id);

    /// Permanently remove a processor from the network: all its future
    /// messages are dropped and it receives nothing (the executive service's
    /// strongest punishment, §3.4).
    void disconnect(common::Processor_id id);

    [[nodiscard]] bool is_disconnected(common::Processor_id id) const;

private:
    [[noreturn]] static void throw_processor_type_mismatch(common::Processor_id id,
                                                           const char* requested_type);

    /// Step `id` into its persistent outbox, then validate and move each
    /// message into `rows[recipient]`, accounting into `stats`.
    void step_processor(common::Processor_id id, std::vector<std::vector<Message>>& rows,
                        Traffic_stats& stats);

    /// Net-model variant: validate, stamp sent_at, ask the net for a verdict,
    /// and hand surviving messages to `route(delay, msg)`. Defined in the .cpp
    /// (all instantiations live there).
    template <typename Route>
    void step_processor_net(common::Processor_id id, Traffic_stats& stats, Route route);

    /// Open/close net-window spans as `pulse_` crosses window bounds (no-op
    /// without a tracer or without windows).
    void trace_net_windows();

    void run_pulse_single();
    void run_pulse_parallel();
    /// Rotate the wheel: the slot due at the current pulse becomes the
    /// inboxes, freeing the slot for pulse_ + delta; applies the optional
    /// per-recipient shuffle.
    void prepare_net_inboxes();
    void run_pulse_net_single();
    void run_pulse_net_parallel();
    void ensure_pool();

    Graph graph_;
    common::Rng rng_;
    Engine_config config_;
    Net_model net_;
    bool net_active_ = false; ///< !net_.is_clean(); selects the wheel paths
    std::vector<std::unique_ptr<Processor>> processors_;
    std::vector<bool> byzantine_;
    std::vector<bool> disconnected_;
    bool any_disconnected_ = false; ///< skips per-message disconnect checks while false
    std::vector<std::vector<Message>> inboxes_;      ///< indexed by recipient
    std::vector<std::vector<Message>> next_inboxes_; ///< double buffer (1-thread path)
    std::vector<std::vector<Message>> outboxes_;     ///< persistent, indexed by sender
    /// Timed-delivery wheel (net paths only): wheel_[p % delta][recipient]
    /// holds the messages due at pulse p. Slot rotation happens in
    /// prepare_net_inboxes.
    std::vector<std::vector<std::vector<Message>>> wheel_;
    common::Pulse pulse_ = 0;
    Traffic_stats stats_;
    Pulse_link* link_ = nullptr; ///< wire boundary (null = in-place delivery)
    telemetry::Tracer* tracer_ = nullptr;
    std::vector<std::int64_t> net_window_spans_; ///< open span id per net window (0 = none)

    // ---- Worker-pool state (built lazily on the first parallel pulse).
    std::unique_ptr<common::Executor> pool_;
    std::vector<std::pair<int, int>> slices_; ///< contiguous [begin, end) id ranges
    std::vector<std::vector<std::vector<Message>>> stage_; ///< [slice][recipient]
    /// Net staging: stage_net_[slice][delay - 1][recipient].
    std::vector<std::vector<std::vector<std::vector<Message>>>> stage_net_;
    std::vector<Traffic_stats> slice_stats_;               ///< per-slice accumulators
};

} // namespace ga::sim

#endif // GA_SIM_ENGINE_H
