// The processor abstraction of the synchronous automaton model (§4.1).
//
// A common pulse triggers each step: the processor reads all messages its
// neighbors sent at the previous pulse, changes state, and sends messages for
// the next pulse. Byzantine processors are simply different Processor
// implementations that need not follow any protocol; transient faults are
// modeled by `corrupt`, which must drive the state to arbitrary values so that
// self-stabilization proofs can be exercised from any starting configuration.
#ifndef GA_SIM_PROCESSOR_H
#define GA_SIM_PROCESSOR_H

#include <vector>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/shared_payload.h"

namespace ga::sim {

/// A point-to-point message delivered one pulse after it is sent. The payload
/// is a refcounted immutable buffer: a broadcast enqueues one allocation
/// aliased by every recipient's Message, and fault injection garbles
/// copy-on-write so no recipient's corruption leaks into another's delivery.
struct Message {
    common::Processor_id from = -1;
    common::Processor_id to = -1;
    common::Shared_payload payload;
    /// Pulse at which the sender queued this message. Under the classic
    /// transport delivery happens at sent_at + 1; under an adversarial
    /// Net_model at sent_at + d for some d in [1, delta], so a receiver's
    /// message age is ctx.pulse() - sent_at - 1 in [0, delta - 1].
    common::Pulse sent_at = 0;
};

/// Per-pulse interface handed to a processor: its inbox plus a send facility.
/// Sends are restricted to graph neighbors; violations throw Contract_error
/// for honest code (Byzantine implementations get their messages dropped by
/// the engine instead, mirroring a real network's topology constraints).
class Pulse_context {
public:
    Pulse_context(common::Pulse pulse, common::Processor_id self, int n,
                  const std::vector<common::Processor_id>* neighbors,
                  const std::vector<Message>* inbox, std::vector<Message>* outbox)
        : pulse_{pulse}, self_{self}, n_{n}, neighbors_{neighbors}, inbox_{inbox}, outbox_{outbox}
    {
    }

    [[nodiscard]] common::Pulse pulse() const { return pulse_; }
    [[nodiscard]] common::Processor_id self() const { return self_; }
    [[nodiscard]] int system_size() const { return n_; }

    /// This processor's neighbors in the communication graph.
    [[nodiscard]] const std::vector<common::Processor_id>& neighbors() const
    {
        return *neighbors_;
    }

    /// Messages sent to this processor at the previous pulse.
    [[nodiscard]] const std::vector<Message>& inbox() const { return *inbox_; }

    /// Queue a message for delivery at the next pulse. The shared-handle
    /// overload aliases an existing buffer (relays and echo attackers forward
    /// without copying); the Bytes overload wraps fresh bytes once.
    void send(common::Processor_id to, common::Shared_payload payload)
    {
        outbox_->push_back(Message{self_, to, std::move(payload), pulse_});
    }
    void send(common::Processor_id to, common::Bytes payload)
    {
        send(to, common::Shared_payload{std::move(payload)});
    }

    /// Queue the same payload to every neighbor (the full-information
    /// protocols all run on complete graphs, where this is a true broadcast).
    /// Zero-copy: one buffer, aliased by all n-1 recipients' Messages, minted
    /// with a single refcount update.
    void broadcast(common::Shared_payload payload)
    {
        auto to = neighbors_->begin();
        payload.fan_out(neighbors_->size(), [&](common::Shared_payload alias) {
            outbox_->push_back(Message{self_, *to++, std::move(alias), pulse_});
        });
    }
    void broadcast(common::Bytes payload)
    {
        broadcast(common::Shared_payload{std::move(payload)});
    }

private:
    common::Pulse pulse_;
    common::Processor_id self_;
    int n_;
    const std::vector<common::Processor_id>* neighbors_;
    const std::vector<Message>* inbox_;
    std::vector<Message>* outbox_;
};

/// Base class for everything the engine schedules.
class Processor {
public:
    explicit Processor(common::Processor_id id) : id_{id} {}
    virtual ~Processor() = default;

    Processor(const Processor&) = delete;
    Processor& operator=(const Processor&) = delete;

    [[nodiscard]] common::Processor_id id() const { return id_; }

    /// One synchronous step (§4.1): consume the inbox, update state, send.
    virtual void on_pulse(Pulse_context& ctx) = 0;

    /// Transient fault: overwrite every state variable with arbitrary values.
    /// Implementations must leave the object in *some* well-typed state but
    /// with semantically arbitrary content (this is what "arbitrary starting
    /// configuration" means for the containing system).
    virtual void corrupt(common::Rng& rng) = 0;

private:
    common::Processor_id id_;
};

} // namespace ga::sim

#endif // GA_SIM_PROCESSOR_H
