// The authority fabric: many concurrent game-authority groups behind one
// front-end — and, since the elastic refactor, a shard topology that can
// change while the fabric runs.
//
// The paper's Distributed_authority supervises one game over one replica
// group, so its throughput is pinned to one BA group's 4(f+2)-pulse play
// cadence. The fabric lifts that bound the way the ROADMAP's "sharded
// authority" item prescribes: a Shard_map partitions the global agent
// population into shards, every shard runs its own authority group (own
// sim::Engine, own replicas, own clock), and an Executor steps the shards on
// a thread pool. Total plays/sec then scales with shard count and hardware
// instead of one group's pulse cadence.
//
// Elastic operation: the current topology lives in an epoch-versioned
// Shard_plan. A Rebalance_policy (shard/rebalancer.h) inspects per-shard
// harvested load and emits migration/split/merge plans; the fabric applies a
// plan only at a play-window edge:
//
//   - affected shards finish their in-flight play (or k-play batch in
//     pipelined mode) — pulses_to_window_edge() per group, at most one
//     window — then retire: their harvest joins the retired-sample ledger
//     and every member's standings/history fold into a per-global-id carried
//     ledger;
//   - unaffected shards are adopted untouched (same group object, same
//     in-flight state — a merge relabel changes a routing id, never the
//     group), so a rebalance pauses only the shards it changes;
//   - changed shards are rebuilt from derive_seed(seed, shard, epoch), and
//     migrating agents are re-keyed into their target group's next play
//     window. Expulsions carry over: an agent disconnected in any earlier
//     epoch is physically expelled from its rebuilt group before it boots
//     (the fresh executive ledger re-registers the expulsion after one audit
//     cycle).
//
// Determinism contract: every epoch-e group of shard s draws its randomness
// from common::derive_seed(seed, s, e), rebalance decisions are pure
// functions of replicated harvests, and shards never share mutable state —
// so a whole elastic run is a pure function of (seed, initial map, rebalance
// policy, config): the same epochs, verdicts, outcomes, and aggregated stats
// bit-for-bit on 1 executor thread or N.
//
// Pipelined mode: config.batch_k > 1 runs every shard as a Pipeline_authority
// (src/pipeline/) amortizing agreement cost over k-play batches; batch edges
// then double as the fabric's migration points.
#ifndef GA_SHARD_FABRIC_H
#define GA_SHARD_FABRIC_H

#include <map>
#include <optional>
#include <set>

#include "common/executor.h"
#include "ingest/ingest.h"
#include "metrics/shard_aggregate.h"
#include "pipeline/pipeline_authority.h"
#include "shard/authority_router.h"
#include "shard/rebalancer.h"
#include "telemetry/export.h"
#include "telemetry/trace_export.h"
#include "telemetry/watchdog.h"
#include "wire/transport.h"

namespace ga::shard {

/// Builds the Game_spec one shard supervises: `members` are the global ids
/// the shard owns (the spec's game must have members.size() agents, locally
/// indexed 0..size-1). Per-game sharding returns a different game per shard;
/// per-region sharding returns the same template sized to the region. The
/// returned game object may be shared between shards only if its cost
/// function is safe to call concurrently (const and stateless, the norm).
/// Elastic note: called again for every rebuilt shard, with the new epoch's
/// membership — `shard` ids are only unique within one epoch.
using Shard_spec_factory =
    std::function<authority::Game_spec(int shard, const std::vector<common::Agent_id>& members)>;

/// Mints a fresh behavior for a global agent. The elastic fabric calls it
/// once per group build the agent is part of — initial construction and
/// every rebuild after a migration/split/merge — so behaviors must be
/// reconstructible from the global id alone. May return null only for ids in
/// Fabric_config::byzantine.
using Behavior_factory =
    std::function<std::unique_ptr<authority::Agent_behavior>(common::Agent_id global)>;

struct Fabric_config {
    int f = 1;                         ///< Byzantine resilience per shard
    Shard_spec_factory spec_factory;   ///< required
    authority::Punishment_factory punishment; ///< required
    std::set<common::Agent_id> byzantine;     ///< *global* ids run attackers
    authority::Byzantine_factory byzantine_factory = {};  ///< default babbler
    authority::Ic_factory ic_factory = {};    ///< default: bft::choose_ic per shard
    std::uint64_t seed = 0;  ///< fabric seed; shard s at epoch e uses derive_seed(seed, s, e)
    int threads = 1;                   ///< executor width (result-invariant)
    /// Adversarial network model every shard's engine delivers through
    /// (default: clean classic transport). The model's own seed is re-derived
    /// per shard and epoch — derive_seed(net.seed, s, e) — so no two groups
    /// (or rebuilds of one) share a fault schedule, and the whole elastic
    /// run stays a pure function of (seed, map, policy, config, net).
    sim::Net_model net;
    /// Wire transport each shard's per-pulse cross-boundary traffic flows
    /// through (src/wire/): behaviors' actions out, verdicts/outcomes/
    /// standings back — everything riding the pulse messages. `loopback`
    /// moves the refcounted payload handles (the historical in-process
    /// behavior, now explicit); `ring` round-trips every message through the
    /// flat frame codec and a lock-free SPSC ring, the full cost model of a
    /// process boundary. Part of the determinism contract: verdicts, stats,
    /// and telemetry are bit-identical between the two kinds and across
    /// executor widths — the choice moves wall-clock cost, never results.
    /// One link per shard group, rebuilt with the group at epoch edges.
    wire::Wire_config transport;
    /// Plays agreed per BA activation batch: 1 = the classic per-play §3.3
    /// schedule (Distributed_authority), > 1 = pipelined shards amortizing
    /// agreement cost over k-play batches (Pipeline_authority).
    int batch_k = 1;
    /// Equivocating-agent instrumentation (global ids; pipelined mode only):
    /// the listed agents open a substituted action inside their sealed batch.
    std::map<common::Agent_id, pipeline::Tamper> tampers;
    /// Required by the elastic constructor; the static (behavior-vector)
    /// constructor forbids it.
    Behavior_factory behavior_factory;
    /// Consulted by maybe_rebalance(); null = the topology never changes on
    /// its own (apply_rebalance still works on an elastic fabric).
    Rebalance_policy rebalance;
    /// Observability: give every group its own telemetry sink (scoped to its
    /// (shard, epoch)) plus one fabric-scope sink for epoch transitions.
    /// Sinks are pure observers, so a run with telemetry on is bit-identical
    /// — same verdicts, standings, traffic, and rebalances — to the same run
    /// with it off; only telemetry_report() gains content.
    bool telemetry = false;
    /// Causal tracing: give every sink a span recorder so trace_report()
    /// carries the full causal nesting of the run (fabric run → window →
    /// play → IC round → audit → quiesce), exportable to Chrome trace JSON.
    /// Implies telemetry. Same purity contract: spans never perturb the run.
    bool trace = false;
    /// Online watchdog evaluated at play-window edges (after run_pulses /
    /// run_plays / epoch transitions). Implies telemetry. Alerts are a pure
    /// function of (seed, map, policy, config, net) like everything else.
    std::optional<telemetry::Watchdog_config> watchdog;
    /// Front door (src/ingest/): give every shard a bounded submission inlet
    /// with token-bucket admission and health states, served in ingest
    /// windows by pump_ingest() instead of harness-driven run_plays. The
    /// config is validated at construction (Contract_error names the bad
    /// field). Admission decisions are part of the determinism contract:
    /// submit() runs on the fabric thread between windows, so the verdict
    /// stream is a pure function of (seed, map, policy, config, net,
    /// submission order) on any executor width.
    std::optional<ingest::Ingest_config> ingest;
};

/// What one epoch transition did (returned by apply_rebalance and kept for
/// the last transition): the bench's pause-bound and carried-group checks
/// read this instead of re-deriving topology diffs.
struct Rebalance_report {
    int epoch = 0;     ///< the epoch the fabric moved to
    int carried = 0;   ///< groups adopted untouched (possibly relabeled)
    int retired = 0;   ///< groups quiesced and folded into the carried ledger
    int rebuilt = 0;   ///< fresh groups built at the new epoch
    common::Pulse max_quiesce_pulses = 0; ///< worst per-shard pause (< one play window)
    Migration_set moves;                  ///< agent moves the transition performed
};

class Fabric {
public:
    /// Static fabric: `behaviors[g]` is global agent g's behavior (null
    /// allowed only for ids in config.byzantine); the router dispatches them
    /// to the owning shards. The topology is frozen at construction —
    /// config.behavior_factory and config.rebalance must be null (rebuilding
    /// a shard needs behaviors mintable per epoch; use the elastic
    /// constructor for that).
    Fabric(Shard_map map, std::vector<std::unique_ptr<authority::Agent_behavior>> behaviors,
           Fabric_config config);

    /// Elastic fabric: behaviors are minted from config.behavior_factory
    /// (required), for the initial groups and again for every shard rebuilt
    /// at an epoch edge.
    Fabric(Shard_map initial, Fabric_config config);

    [[nodiscard]] int n_shards() const { return plan_.map().n_shards(); }
    [[nodiscard]] int n_agents() const { return plan_.map().n_agents(); }
    [[nodiscard]] int epoch() const { return plan_.epoch(); }
    [[nodiscard]] const Shard_plan& plan() const { return plan_; }
    [[nodiscard]] const Shard_map& map() const { return plan_.map(); }
    [[nodiscard]] const Authority_router& router() const { return *router_; }
    /// Throws Contract_error naming the shard id when out of range.
    [[nodiscard]] const authority::Authority_group& shard(int s) const;
    [[nodiscard]] bool pipelined() const { return config_.batch_k > 1; }
    [[nodiscard]] int batch_k() const { return config_.batch_k; }

    /// Step every shard `count` pulses (concurrently across the pool).
    void run_pulses(common::Pulse count);

    /// Step every shard for `plays` complete steady-state plays (each shard
    /// advances by its own pulses-per-play cadence).
    void run_plays(int plays);

    /// §4 transient fault in every shard at once.
    void inject_transient_fault();

    // ---- Front door (config.ingest).

    [[nodiscard]] bool ingest_enabled() const { return config_.ingest.has_value(); }

    /// Offer one submission to the owning shard's inlet (admission control,
    /// quota, shedding — ingest.h). Submissions for expelled agents are shed
    /// at the door ("ingest.shed_expelled" on the owning shard's sink)
    /// without entering the inlet's admission ledger. Requires config.ingest.
    ingest::Submit_result submit(const ingest::Submission& sub);

    /// Serve one ingest window: every shard drains up to window_batches x
    /// batch_k pending submissions from its inlet and runs that many plays
    /// (concurrently across the pool), completions are recorded against the
    /// submit-to-verdict histogram, buckets refill, and health states
    /// re-derive. Returns the number of submissions served. A shard with an
    /// empty inlet does not advance — its backlog, not the harness, is its
    /// clock. Requires config.ingest.
    int pump_ingest();

    /// One shard's inlet, read-only (queue depth, health, totals). Throws
    /// Contract_error when ingest is off or `s` is out of range.
    [[nodiscard]] const ingest::Shard_inlet& inlet(int s) const;

    /// Whole-run admission accounting: inlets retired at epoch transitions
    /// folded with every live inlet — continuous across rebalances. Zero
    /// when ingest is off.
    [[nodiscard]] ingest::Ingest_totals ingest_totals() const;

    // ---- Elastic operation (epoch transitions).

    /// Consult config.rebalance over every live shard's load and apply any
    /// non-empty plan at the window edge. Returns true when the topology
    /// changed. No-op (false) without a policy, and also when the proposal
    /// would dip a group under the fabric's 3f+1 floor (a policy configured
    /// with a looser min_members cannot crash the run). A structurally
    /// malformed proposal (stale shard ids, duplicate movers, ...) is a
    /// policy bug and still throws Contract_error.
    bool maybe_rebalance();

    /// Apply an explicit non-empty plan now: quiesce affected shards to
    /// their window edge, retire them into the carried ledger, adopt
    /// untouched groups, rebuild changed shards at epoch+1. Requires the
    /// elastic constructor.
    Rebalance_report apply_rebalance(const Rebalance_plan& plan);

    /// The most recent epoch transition, if any.
    [[nodiscard]] const std::optional<Rebalance_report>& last_rebalance() const
    {
        return last_rebalance_;
    }

    // ---- Cross-epoch agent views (carried ledger + current shard, keyed by
    // global id — continuous across migrations).

    /// The agent's complete agreed play history: folded entries from every
    /// retired group it was a member of, then its current shard's history.
    [[nodiscard]] std::vector<Authority_router::Agent_play>
    agent_history(common::Agent_id global) const;

    /// The agent's continuous standing: retired epochs folded with the
    /// current shard's ledger entry via authority::merge_standings.
    [[nodiscard]] authority::Standing agent_standing(common::Agent_id global) const;

    /// True once any epoch's group expelled the agent (permanent).
    [[nodiscard]] bool agent_disconnected(common::Agent_id global) const;

    // ---- Harvesting.

    /// Harvest one live shard's current totals (plays, traffic, fouls,
    /// costs), tagged with the current epoch.
    [[nodiscard]] metrics::Shard_sample harvest(int s) const;

    /// Fabric-level aggregation: every retired group's final harvest plus
    /// every live shard's current harvest — totals sum across epochs without
    /// loss or double counting. With telemetry enabled the report's merged
    /// snapshot additionally folds in the fabric-scope sink.
    [[nodiscard]] metrics::Fabric_metrics report() const;

    // ---- Observability (config.telemetry).

    [[nodiscard]] bool telemetry_enabled() const { return config_.telemetry; }

    /// The whole run's telemetry: the fabric-scope sink plus one scoped
    /// snapshot per group lifetime — retired groups' final snapshots and live
    /// groups' current ones — in (epoch, shard) order. Deterministic: the
    /// same (seed, map, policy, config, net) produces byte-identical
    /// to_json(telemetry_report()) on any thread count. Empty when telemetry
    /// is disabled. With tracing/watchdog on, the report additionally
    /// carries the run's verdict provenance (every agent, globalized ids)
    /// and the watchdog's alerts.
    [[nodiscard]] telemetry::Report telemetry_report() const;

    // ---- Forensics (config.trace / config.watchdog).

    /// Why was this agent punished: every evidence chain recorded against
    /// `global`, across its whole migration history — retired epochs from
    /// the carried ledger first (in retirement order), then the agent's
    /// current shard — with agent ids globalized. Non-empty for every agent
    /// a group ever flagged while telemetry was on; entries whose expulsion
    /// the executive enacted carry expelled/expelled_at.
    [[nodiscard]] std::vector<telemetry::Evidence> provenance(common::Agent_id global) const;

    /// The whole run's span tracks: the fabric-scope track plus one per
    /// group lifetime (retired tracks first), in (epoch, shard) order —
    /// ready for telemetry::to_chrome_trace. Empty unless config.trace.
    [[nodiscard]] telemetry::Trace_report trace_report() const;

    /// Alerts the watchdog has raised so far (empty without config.watchdog).
    [[nodiscard]] const std::vector<telemetry::Alert>& watchdog_alerts() const;

private:
    /// Per-global-agent state carried across epoch transitions.
    struct Agent_ledger {
        std::vector<Authority_router::Agent_play> history;
        authority::Standing carried{};
        bool expelled = false;
        /// Evidence chains from retired groups, agent ids globalized.
        std::vector<telemetry::Evidence> evidence;
    };

    void validate_config() const;
    /// A freshly built replica group plus its game's enumerable optimum.
    struct Built_group {
        std::unique_ptr<authority::Authority_group> group;
        std::optional<double> optimum;
    };
    /// Build the group for shard `s` of `plan` (any epoch). `behaviors` must
    /// be ordered by local id; null entries only for Byzantine slots. Pure
    /// with respect to fabric state, so apply_rebalance can build every
    /// replacement group *before* mutating anything — a throwing spec or
    /// behavior factory leaves the fabric intact.
    [[nodiscard]] Built_group
    build_group(const Shard_plan& plan, int s,
                std::vector<std::unique_ptr<authority::Agent_behavior>> behaviors) const;
    /// Mint a shard's behavior vector through config_.behavior_factory.
    [[nodiscard]] std::vector<std::unique_ptr<authority::Agent_behavior>>
    mint_behaviors(const Shard_map& map, int s) const;
    /// Install groups for every shard of plan_ (construction time).
    void build_all(std::vector<std::vector<std::unique_ptr<authority::Agent_behavior>>> per_shard);
    /// Fold a quiesced group's harvest, histories, standings, and expulsions
    /// into the carried state, then destroy it.
    void retire_group(int s);
    /// The epoch transition proper, over an already-validated successor
    /// snapshot (shared by apply_rebalance and maybe_rebalance so the plan
    /// transform runs exactly once per transition).
    Rebalance_report apply_next_plan(Shard_plan next);
    void rebuild_router();
    /// Run the watchdog over the fabric sink and every live shard sink in
    /// shard order (no-op without config.watchdog). Called at window edges:
    /// after run_pulses/run_plays and at the end of an epoch transition.
    void poll_watchdog();

    Shard_plan plan_;
    Fabric_config config_;
    std::vector<std::unique_ptr<authority::Authority_group>> shards_;
    std::vector<std::optional<double>> optimum_costs_; ///< per-shard social optimum
    std::unique_ptr<Authority_router> router_;
    common::Executor executor_;
    std::optional<Rebalancer> rebalancer_;

    /// Per-group sinks, parallel to shards_ (empty when telemetry is off).
    /// Each is written only by its group — from the group's stepping job
    /// while the executor runs, never by the fabric thread concurrently — so
    /// the single-writer contract holds on any thread count.
    std::vector<std::unique_ptr<telemetry::Telemetry_sink>> shard_sinks_;
    std::unique_ptr<telemetry::Telemetry_sink> fabric_sink_; ///< epoch transitions

    /// Per-shard front-door inlets, parallel to shards_ (empty without
    /// config.ingest). Written only from the fabric thread between executor
    /// runs — same single-writer contract as the sinks.
    std::vector<std::unique_ptr<ingest::Shard_inlet>> inlets_;
    std::int64_t ingest_seq_ = 0; ///< fabric-global submission ordinal
    ingest::Ingest_totals retired_ingest_; ///< totals folded from retired inlets

    std::vector<Agent_ledger> ledgers_;                ///< one per global agent
    std::vector<metrics::Shard_sample> retired_samples_;
    std::vector<telemetry::Scoped_spans> retired_spans_; ///< retired groups' span tracks
    std::optional<Rebalance_report> last_rebalance_;
    std::optional<telemetry::Watchdog> watchdog_;
    std::int64_t fabric_run_span_ = 0; ///< root span of the fabric track (trace on)
};

} // namespace ga::shard

#endif // GA_SHARD_FABRIC_H
