// The authority fabric: many concurrent game-authority groups behind one
// front-end.
//
// The paper's Distributed_authority supervises one game over one replica
// group, so its throughput is pinned to one BA group's 4(f+2)-pulse play
// cadence. The fabric lifts that bound the way the ROADMAP's "sharded
// authority" item prescribes: a Shard_map partitions the global agent
// population into shards, every shard runs its own Distributed_authority
// (own sim::Engine, own replicas, own clock), and an Executor steps the
// shards on a thread pool. Total plays/sec then scales with shard count and
// hardware instead of one group's pulse cadence — and because BA cost grows
// superlinearly in group size, S small groups are cheaper per play than one
// big one even on a single core.
//
// Determinism contract: shard s draws every bit of randomness from
// common::derive_seed(config.seed, s), and shards never share mutable state,
// so a whole-fabric run is a pure function of (seed, map, config) — the same
// verdicts, outcomes, and aggregated stats bit-for-bit on 1 thread or N.
//
// Pipelined mode: config.batch_k > 1 runs every shard as a Pipeline_authority
// (src/pipeline/) that amortizes agreement cost over batches of k plays —
// per-group throughput scaling, orthogonal to the fabric's scale-out across
// groups. The determinism contract is unchanged: batched shards draw from the
// same derive_seed streams.
#ifndef GA_SHARD_FABRIC_H
#define GA_SHARD_FABRIC_H

#include <map>
#include <set>

#include "common/executor.h"
#include "metrics/shard_aggregate.h"
#include "pipeline/pipeline_authority.h"
#include "shard/authority_router.h"

namespace ga::shard {

/// Builds the Game_spec one shard supervises: `members` are the global ids
/// the shard owns (the spec's game must have members.size() agents, locally
/// indexed 0..size-1). Per-game sharding returns a different game per shard;
/// per-region sharding returns the same template sized to the region. The
/// returned game object may be shared between shards only if its cost
/// function is safe to call concurrently (const and stateless, the norm).
using Shard_spec_factory =
    std::function<authority::Game_spec(int shard, const std::vector<common::Agent_id>& members)>;

struct Fabric_config {
    int f = 1;                         ///< Byzantine resilience per shard
    Shard_spec_factory spec_factory;   ///< required
    authority::Punishment_factory punishment; ///< required
    std::set<common::Agent_id> byzantine;     ///< *global* ids run attackers
    authority::Byzantine_factory byzantine_factory = {};  ///< default babbler
    authority::Ic_factory ic_factory = {};    ///< default: bft::choose_ic per shard
    std::uint64_t seed = 0;            ///< fabric seed; shard s uses derive_seed(seed, s)
    int threads = 1;                   ///< executor width (result-invariant)
    /// Plays agreed per BA activation batch: 1 = the classic per-play §3.3
    /// schedule (Distributed_authority), > 1 = pipelined shards amortizing
    /// agreement cost over k-play batches (Pipeline_authority).
    int batch_k = 1;
    /// Equivocating-agent instrumentation (global ids; pipelined mode only):
    /// the listed agents open a substituted action inside their sealed batch.
    std::map<common::Agent_id, pipeline::Tamper> tampers;
};

class Fabric {
public:
    /// `behaviors[g]` is global agent g's behavior (null allowed only for ids
    /// in config.byzantine); the router dispatches them to the owning shards.
    Fabric(Shard_map map, std::vector<std::unique_ptr<authority::Agent_behavior>> behaviors,
           Fabric_config config);

    [[nodiscard]] int n_shards() const { return map_.n_shards(); }
    [[nodiscard]] int n_agents() const { return map_.n_agents(); }
    [[nodiscard]] const Shard_map& map() const { return map_; }
    [[nodiscard]] const Authority_router& router() const { return *router_; }
    [[nodiscard]] const authority::Authority_group& shard(int s) const;
    [[nodiscard]] bool pipelined() const { return config_.batch_k > 1; }
    [[nodiscard]] int batch_k() const { return config_.batch_k; }

    /// Step every shard `count` pulses (concurrently across the pool).
    void run_pulses(common::Pulse count);

    /// Step every shard for `plays` complete steady-state plays (each shard
    /// advances by its own pulses-per-play cadence).
    void run_plays(int plays);

    /// §4 transient fault in every shard at once.
    void inject_transient_fault();

    /// Harvest one shard's current totals (plays, traffic, fouls, costs).
    [[nodiscard]] metrics::Shard_sample harvest(int s) const;

    /// Fabric-level aggregation of every shard's harvest.
    [[nodiscard]] metrics::Fabric_metrics report() const;

private:
    Shard_map map_;
    Fabric_config config_;
    std::vector<std::unique_ptr<authority::Authority_group>> shards_;
    std::vector<std::optional<double>> optimum_costs_; ///< per-shard social optimum
    std::unique_ptr<Authority_router> router_;
    common::Executor executor_;
};

} // namespace ga::shard

#endif // GA_SHARD_FABRIC_H
