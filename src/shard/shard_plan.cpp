#include "shard/shard_plan.h"

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <utility>

#include "common/ensure.h"

namespace ga::shard {

Shard_plan::Shard_plan(Shard_map initial) : epoch_{0}, map_{std::move(initial)} {}

Shard_plan::Shard_plan(int epoch, Shard_map map, Migration_set pending)
    : epoch_{epoch}, map_{std::move(map)}, pending_{std::move(pending)}
{
}

Shard_plan Shard_plan::apply(const Rebalance_plan& plan, int min_members) const
{
    common::ensure(!plan.empty(), "Shard_plan::apply: empty rebalance plan");
    common::ensure(min_members >= 1, "Shard_plan::apply: min_members must be positive");

    const int n_agents = map_.n_agents();
    const int old_shards = map_.n_shards();
    std::vector<int> shard_of = map_.assignment();
    int n_shards = old_shards;

    // Operation disjointness: migrations may share shards among themselves,
    // but a shard in any split/merge joins no other operation this epoch.
    std::set<int> migration_shards;
    std::vector<bool> structural(static_cast<std::size_t>(old_shards), false);
    const auto claim_structural = [&](int s, const char* op) {
        common::ensure(s >= 0 && s < old_shards, "Shard_plan::apply: shard id out of range");
        common::ensure(!structural[static_cast<std::size_t>(s)] &&
                           migration_shards.count(s) == 0,
                       op);
        structural[static_cast<std::size_t>(s)] = true;
    };

    Migration_set moves;

    // ---- Explicit migrations between existing shards.
    for (const Migration& m : plan.migrations) {
        common::ensure(m.agent >= 0 && m.agent < n_agents,
                       "Shard_plan::apply: migration agent out of range");
        common::ensure(map_.shard_of(m.agent) == m.from,
                       "Shard_plan::apply: migration from-shard mismatch");
        common::ensure(m.to >= 0 && m.to < old_shards,
                       "Shard_plan::apply: migration target shard out of range");
        common::ensure(m.to != m.from, "Shard_plan::apply: migration to the agent's own shard");
        common::ensure(shard_of[static_cast<std::size_t>(m.agent)] == m.from,
                       "Shard_plan::apply: agent migrated twice in one plan");
        shard_of[static_cast<std::size_t>(m.agent)] = m.to;
        migration_shards.insert(m.from);
        migration_shards.insert(m.to);
        moves.push_back(m);
    }

    // ---- Splits: movers leave for a brand-new shard appended at the top.
    for (const Shard_split& split : plan.splits) {
        claim_structural(split.shard,
                         "Shard_plan::apply: split shard already in another operation");
        common::ensure(!split.movers.empty(), "Shard_plan::apply: split with no movers");
        common::ensure(split.movers.size() < map_.members(split.shard).size(),
                       "Shard_plan::apply: split must leave the source shard populated");
        const int fresh = n_shards++;
        std::set<common::Agent_id> seen;
        for (const common::Agent_id a : split.movers) {
            common::ensure(a >= 0 && a < n_agents,
                           "Shard_plan::apply: split mover out of range");
            common::ensure(map_.shard_of(a) == split.shard,
                           "Shard_plan::apply: split mover not in the split shard");
            common::ensure(seen.insert(a).second, "Shard_plan::apply: duplicate split mover");
            shard_of[static_cast<std::size_t>(a)] = fresh;
            moves.push_back(Migration{a, split.shard, fresh});
        }
    }

    // ---- Merges: `from` empties into `into`; its dense id is recycled below.
    std::vector<int> recycled;
    for (const Shard_merge& merge : plan.merges) {
        common::ensure(merge.from != merge.into, "Shard_plan::apply: merge of a shard with itself");
        claim_structural(merge.from,
                         "Shard_plan::apply: merge source already in another operation");
        claim_structural(merge.into,
                         "Shard_plan::apply: merge target already in another operation");
        for (const common::Agent_id a : map_.members(merge.from)) {
            shard_of[static_cast<std::size_t>(a)] = merge.into;
            moves.push_back(Migration{a, merge.from, merge.into});
        }
        recycled.push_back(merge.from);
    }

    // Recycle each emptied id by relabeling the highest-numbered shard onto
    // it (descending order, so an emptied slot never fills another). The
    // relabeled shard's membership is untouched — its replica group is
    // carried, only its routing id changes. Recorded moves keep `to` in the
    // final numbering.
    std::sort(recycled.begin(), recycled.end(), std::greater<>());
    for (const int empty_slot : recycled) {
        const int last = n_shards - 1;
        if (empty_slot != last) {
            for (int& s : shard_of) {
                if (s == last) s = empty_slot;
            }
            for (Migration& m : moves) {
                if (m.to == last) m.to = empty_slot;
            }
        }
        --n_shards;
    }

    // ---- Result validation: every surviving shard keeps a viable group.
    common::ensure(n_shards >= 1, "Shard_plan::apply: plan leaves no shards");
    std::vector<int> sizes(static_cast<std::size_t>(n_shards), 0);
    for (const int s : shard_of) ++sizes[static_cast<std::size_t>(s)];
    for (int s = 0; s < n_shards; ++s) {
        if (sizes[static_cast<std::size_t>(s)] < min_members) {
            throw common::Contract_error{
                "Shard_plan::apply: shard " + std::to_string(s) + " would keep " +
                std::to_string(sizes[static_cast<std::size_t>(s)]) + " members, need >= " +
                std::to_string(min_members)};
        }
    }

    return Shard_plan{epoch_ + 1, Shard_map{shard_of}, std::move(moves)};
}

std::vector<int> carried_shards(const Shard_map& prev, const Shard_map& next)
{
    common::ensure(prev.n_agents() == next.n_agents(),
                   "carried_shards: maps must partition the same population");
    std::vector<int> carried(static_cast<std::size_t>(next.n_shards()), -1);
    for (int s = 0; s < next.n_shards(); ++s) {
        const std::vector<common::Agent_id>& members = next.members(s);
        // Partitions are disjoint, so the only possible identical-membership
        // shard of `prev` is the one owning this shard's first member.
        const int candidate = prev.shard_of(members.front());
        if (prev.members(candidate) == members) carried[static_cast<std::size_t>(s)] = candidate;
    }
    return carried;
}

} // namespace ga::shard
