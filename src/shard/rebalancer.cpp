#include "shard/rebalancer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/ensure.h"

namespace ga::shard {

namespace {

/// Index of the hottest shard by per-play wire cost (lowest id on ties);
/// -1 when no shard has completed a play yet.
int hottest(const std::vector<Shard_load>& loads)
{
    int hot = -1;
    for (std::size_t i = 0; i < loads.size(); ++i) {
        if (loads[i].plays <= 0) continue;
        if (hot < 0 || loads[i].cost_per_play() > loads[static_cast<std::size_t>(hot)].cost_per_play()) {
            hot = static_cast<int>(i);
        }
    }
    return hot;
}

/// The upper half (floor(size/2) members) of a shard's member list — the
/// deterministic mover set the stock split policies use.
std::vector<common::Agent_id> upper_half(const std::vector<common::Agent_id>& members)
{
    const std::size_t movers = members.size() / 2;
    return {members.end() - static_cast<std::ptrdiff_t>(movers), members.end()};
}

} // namespace

Rebalance_policy rebalance_load_threshold(double ratio, int min_members)
{
    common::ensure(ratio > 1.0, "rebalance_load_threshold: ratio must exceed 1");
    common::ensure(min_members >= 1, "rebalance_load_threshold: min_members must be positive");
    return [ratio, min_members](const Shard_plan& plan, const std::vector<Shard_load>& loads) {
        Rebalance_plan out;
        double total = 0.0;
        int counted = 0;
        for (const Shard_load& load : loads) {
            if (load.plays > 0) {
                total += load.cost_per_play();
                ++counted;
            }
        }
        if (counted < 2) return out; // nothing to compare against
        const double mean = total / counted;
        const int hot = hottest(loads);
        if (hot < 0 || loads[static_cast<std::size_t>(hot)].cost_per_play() <= ratio * mean) {
            return out;
        }

        const int hot_shard = loads[static_cast<std::size_t>(hot)].shard;
        const std::vector<common::Agent_id>& members = plan.map().members(hot_shard);
        const int size = static_cast<int>(members.size());
        if (size / 2 >= min_members) {
            out.splits.push_back(Shard_split{hot_shard, upper_half(members)});
            return out;
        }

        // Too small to split: drain toward the lightest shard instead.
        int light = -1;
        for (std::size_t i = 0; i < loads.size(); ++i) {
            if (loads[i].shard == hot_shard) continue;
            if (light < 0 || loads[i].agents < loads[static_cast<std::size_t>(light)].agents) {
                light = static_cast<int>(i);
            }
        }
        if (light < 0) return out;
        const int light_shard = loads[static_cast<std::size_t>(light)].shard;
        const int gap = (size - loads[static_cast<std::size_t>(light)].agents) / 2;
        const int movable = std::min(size - min_members, gap);
        for (int i = 0; i < movable; ++i) {
            out.migrations.push_back(
                Migration{members[static_cast<std::size_t>(size - 1 - i)], hot_shard, light_shard});
        }
        return out;
    };
}

Rebalance_policy rebalance_ingest_pressure(double ratio, int min_members)
{
    common::ensure(ratio > 1.0, "rebalance_ingest_pressure: ratio must exceed 1");
    common::ensure(min_members >= 1, "rebalance_ingest_pressure: min_members must be positive");
    return [ratio, min_members](const Shard_plan& plan, const std::vector<Shard_load>& loads) {
        Rebalance_plan out;
        if (loads.size() < 2) return out;
        std::int64_t total = 0;
        int deep = -1;
        for (std::size_t i = 0; i < loads.size(); ++i) {
            total += loads[i].backlog;
            if (loads[i].backlog > 0 &&
                (deep < 0 ||
                 loads[i].backlog > loads[static_cast<std::size_t>(deep)].backlog)) {
                deep = static_cast<int>(i);
            }
        }
        if (deep < 0) return out; // the front door is keeping up everywhere
        const double mean =
            static_cast<double>(total) / static_cast<double>(loads.size());
        if (static_cast<double>(loads[static_cast<std::size_t>(deep)].backlog) <= ratio * mean) {
            return out;
        }

        const int hot_shard = loads[static_cast<std::size_t>(deep)].shard;
        const std::vector<common::Agent_id>& members = plan.map().members(hot_shard);
        const int size = static_cast<int>(members.size());
        if (size / 2 >= min_members) {
            out.splits.push_back(Shard_split{hot_shard, upper_half(members)});
            return out;
        }

        // Too small to split: drain toward the lightest-populated shard.
        int light = -1;
        for (std::size_t i = 0; i < loads.size(); ++i) {
            if (loads[i].shard == hot_shard) continue;
            if (light < 0 || loads[i].agents < loads[static_cast<std::size_t>(light)].agents) {
                light = static_cast<int>(i);
            }
        }
        if (light < 0) return out;
        const int light_shard = loads[static_cast<std::size_t>(light)].shard;
        const int gap = (size - loads[static_cast<std::size_t>(light)].agents) / 2;
        const int movable = std::min(size - min_members, gap);
        for (int i = 0; i < movable; ++i) {
            out.migrations.push_back(
                Migration{members[static_cast<std::size_t>(size - 1 - i)], hot_shard, light_shard});
        }
        return out;
    };
}

Rebalance_policy rebalance_size_cap(int max_members, int min_members)
{
    common::ensure(min_members >= 1, "rebalance_size_cap: min_members must be positive");
    common::ensure(max_members >= min_members, "rebalance_size_cap: cap below the group floor");
    return [max_members, min_members](const Shard_plan& plan, const std::vector<Shard_load>&) {
        Rebalance_plan out;
        for (int s = 0; s < plan.map().n_shards(); ++s) {
            const std::vector<common::Agent_id>& members = plan.map().members(s);
            const int size = static_cast<int>(members.size());
            if (size > max_members && size / 2 >= min_members) {
                out.splits.push_back(Shard_split{s, upper_half(members)});
            }
        }
        return out;
    };
}

Rebalance_policy rebalance_explicit(std::vector<Rebalance_plan> scripted)
{
    // Keyed on the plan's epoch rather than a playback cursor, so the policy
    // stays a pure function of its inputs: copies of the policy (and whole
    // re-runs of a fabric) see the same plan at the same epoch, which is what
    // the fabric's determinism contract requires.
    auto script =
        std::make_shared<const std::vector<Rebalance_plan>>(std::move(scripted));
    return [script](const Shard_plan& plan, const std::vector<Shard_load>&) {
        const auto e = static_cast<std::size_t>(plan.epoch());
        return e < script->size() ? (*script)[e] : Rebalance_plan{};
    };
}

Rebalancer::Rebalancer(Rebalance_policy policy) : policy_{std::move(policy)}
{
    common::ensure(policy_ != nullptr, "Rebalancer: null policy");
}

Rebalance_plan Rebalancer::propose(const Shard_plan& plan, std::vector<Shard_load> loads) const
{
    std::sort(loads.begin(), loads.end(),
              [](const Shard_load& a, const Shard_load& b) { return a.shard < b.shard; });
    return policy_(plan, loads);
}

} // namespace ga::shard
