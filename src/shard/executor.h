// Fixed-size thread pool stepping the fabric's shards.
//
// Each shard is a self-contained deterministic simulation (its own engine,
// RNG, and replicas), so shard steps are embarrassingly parallel: workers
// claim whole jobs, never share mutable state, and the fabric aggregates in
// shard-index order afterwards. That is what makes an N-thread fabric run
// bit-identical to the 1-thread run — the pool only changes *when* a shard's
// pulses execute on the wall clock, never what they compute.
#ifndef GA_SHARD_EXECUTOR_H
#define GA_SHARD_EXECUTOR_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ga::shard {

class Executor {
public:
    /// `threads >= 1`; the calling thread is one of them, so `threads == 1`
    /// spawns no workers and runs every job inline in submission order.
    explicit Executor(int threads);
    ~Executor();

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    [[nodiscard]] int threads() const { return threads_; }

    /// Run every job to completion before returning; the caller participates.
    /// The first exception a job throws is rethrown here once all jobs have
    /// finished. Not reentrant: jobs must not call run_all.
    void run_all(const std::vector<std::function<void()>>& jobs);

private:
    void worker_loop();
    void drain();

    int threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable batch_cv_; ///< wakes workers on a new batch
    std::condition_variable done_cv_;  ///< wakes run_all when a batch drains
    const std::vector<std::function<void()>>* jobs_ = nullptr;
    std::size_t next_ = 0;       ///< next unclaimed job in the current batch
    std::size_t unfinished_ = 0; ///< claimed-or-unclaimed jobs still running
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::exception_ptr error_;
};

} // namespace ga::shard

#endif // GA_SHARD_EXECUTOR_H
