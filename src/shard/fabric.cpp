#include "shard/fabric.h"

#include <algorithm>

#include "game/analysis.h"

namespace ga::shard {

namespace {

/// Social-optimum enumeration cutoff: beyond this many pure profiles the
/// optimum is not computed and the shard reports no price-of-anarchy term.
constexpr std::int64_t k_max_enumerable_profiles = std::int64_t{1} << 20;

/// The shard game's optimum social cost when its profile space is small
/// enough to enumerate, nullopt otherwise. Counts profiles with an early
/// exit rather than via Strategic_game::profile_count, which throws (instead
/// of saturating) once the space tops 2^40 — large shards must degrade to
/// "no price-of-anarchy term", not refuse to construct.
std::optional<double> enumerable_optimum_cost(const game::Strategic_game& game)
{
    std::int64_t count = 1;
    for (common::Agent_id i = 0; i < game.n_agents(); ++i) {
        count *= std::max(1, game.n_actions(i));
        if (count > k_max_enumerable_profiles) return std::nullopt;
    }
    return game::social_optimum(game).cost;
}

} // namespace

Fabric::Fabric(Shard_map map, std::vector<std::unique_ptr<authority::Agent_behavior>> behaviors,
               Fabric_config config)
    : map_{std::move(map)}, config_{std::move(config)}, executor_{config_.threads}
{
    common::ensure(config_.spec_factory != nullptr, "Fabric: null shard spec factory");
    common::ensure(config_.punishment != nullptr, "Fabric: null punishment factory");
    for (const common::Agent_id g : config_.byzantine) {
        common::ensure(g >= 0 && g < map_.n_agents(), "Fabric: Byzantine id out of range");
    }
    common::ensure(config_.batch_k >= 1 && config_.batch_k <= pipeline::k_max_batch,
                   "Fabric: batch_k out of range");
    common::ensure(config_.tampers.empty() || pipelined(),
                   "Fabric: tampers require pipelined mode (batch_k > 1)");
    for (const auto& [g, tamper] : config_.tampers) {
        common::ensure(g >= 0 && g < map_.n_agents(), "Fabric: tamper id out of range");
        (void)tamper;
    }

    auto per_shard_behaviors = Authority_router::partition_behaviors(map_, std::move(behaviors));

    shards_.reserve(static_cast<std::size_t>(map_.n_shards()));
    optimum_costs_.reserve(static_cast<std::size_t>(map_.n_shards()));
    for (int s = 0; s < map_.n_shards(); ++s) {
        const std::vector<common::Agent_id>& members = map_.members(s);
        authority::Game_spec spec = config_.spec_factory(s, members);
        common::ensure(spec.game != nullptr, "Fabric: shard spec factory returned a null game");
        common::ensure(spec.game->n_agents() == static_cast<int>(members.size()),
                       "Fabric: shard game size must match the shard population");

        std::set<common::Processor_id> local_byzantine;
        for (const common::Agent_id g : config_.byzantine) {
            if (map_.shard_of(g) == s) local_byzantine.insert(map_.local_of(g));
        }

        optimum_costs_.push_back(enumerable_optimum_cost(*spec.game));

        common::Rng shard_rng{common::derive_seed(config_.seed, static_cast<std::uint64_t>(s))};
        if (pipelined()) {
            std::map<common::Processor_id, pipeline::Tamper> local_tampers;
            for (const auto& [g, tamper] : config_.tampers) {
                if (map_.shard_of(g) == s) local_tampers.emplace(map_.local_of(g), tamper);
            }
            shards_.push_back(std::make_unique<pipeline::Pipeline_authority>(
                std::move(spec), config_.f, config_.batch_k,
                std::move(per_shard_behaviors[static_cast<std::size_t>(s)]), local_byzantine,
                config_.punishment, std::move(shard_rng), config_.byzantine_factory,
                config_.ic_factory, std::move(local_tampers)));
        } else {
            shards_.push_back(std::make_unique<authority::Distributed_authority>(
                std::move(spec), config_.f,
                std::move(per_shard_behaviors[static_cast<std::size_t>(s)]), local_byzantine,
                config_.punishment, std::move(shard_rng), config_.byzantine_factory,
                config_.ic_factory));
        }
    }

    std::vector<const authority::Authority_group*> shard_views;
    shard_views.reserve(shards_.size());
    for (const auto& shard : shards_) shard_views.push_back(shard.get());
    router_ = std::make_unique<Authority_router>(map_, std::move(shard_views));
}

const authority::Authority_group& Fabric::shard(int s) const
{
    common::ensure(s >= 0 && s < n_shards(), "Fabric::shard: index out of range");
    return *shards_[static_cast<std::size_t>(s)];
}

void Fabric::run_pulses(common::Pulse count)
{
    std::vector<std::function<void()>> jobs;
    jobs.reserve(shards_.size());
    for (auto& shard : shards_) {
        jobs.push_back([&shard, count] { shard->run_pulses(count); });
    }
    executor_.run_all(jobs);
}

void Fabric::run_plays(int plays)
{
    std::vector<std::function<void()>> jobs;
    jobs.reserve(shards_.size());
    for (auto& shard : shards_) {
        jobs.push_back([&shard, plays] { shard->run_plays(plays); });
    }
    executor_.run_all(jobs);
}

void Fabric::inject_transient_fault()
{
    for (auto& shard : shards_) shard->inject_transient_fault();
}

metrics::Shard_sample Fabric::harvest(int s) const
{
    const authority::Authority_group& group = shard(s);
    metrics::Shard_sample sample;
    sample.shard = s;
    sample.agents = group.n_agents();
    sample.traffic = group.traffic();

    const auto& plays = group.agreed_plays();
    sample.plays = static_cast<std::int64_t>(plays.size());
    for (const authority::Play_record& play : plays) {
        sample.social_cost += game::social_cost(*group.spec().game, play.outcome);
    }
    if (optimum_costs_[static_cast<std::size_t>(s)].has_value()) {
        sample.optimal_cost =
            static_cast<double>(sample.plays) * *optimum_costs_[static_cast<std::size_t>(s)];
    }
    for (const authority::Standing& standing : group.agreed_standings()) {
        sample.fouls += standing.fouls;
    }
    sample.disconnected = static_cast<int>(group.disconnected_agents().size());
    return sample;
}

metrics::Fabric_metrics Fabric::report() const
{
    std::vector<metrics::Shard_sample> samples;
    samples.reserve(shards_.size());
    for (int s = 0; s < n_shards(); ++s) samples.push_back(harvest(s));
    return metrics::aggregate_shards(std::move(samples));
}

} // namespace ga::shard
