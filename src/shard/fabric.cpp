#include "shard/fabric.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "game/analysis.h"

namespace ga::shard {

namespace {

/// Social-optimum enumeration cutoff: beyond this many pure profiles the
/// optimum is not computed and the shard reports no price-of-anarchy term.
constexpr std::int64_t k_max_enumerable_profiles = std::int64_t{1} << 20;

/// The shard game's optimum social cost when its profile space is small
/// enough to enumerate, nullopt otherwise. Counts profiles with an early
/// exit rather than via Strategic_game::profile_count, which throws (instead
/// of saturating) once the space tops 2^40 — large shards must degrade to
/// "no price-of-anarchy term", not refuse to construct.
std::optional<double> enumerable_optimum_cost(const game::Strategic_game& game)
{
    std::int64_t count = 1;
    for (common::Agent_id i = 0; i < game.n_agents(); ++i) {
        count *= std::max(1, game.n_actions(i));
        if (count > k_max_enumerable_profiles) return std::nullopt;
    }
    return game::social_optimum(game).cost;
}

} // namespace

void Fabric::validate_config() const
{
    common::ensure(config_.spec_factory != nullptr, "Fabric: null shard spec factory");
    common::ensure(config_.punishment != nullptr, "Fabric: null punishment factory");
    for (const common::Agent_id g : config_.byzantine) {
        common::ensure(g >= 0 && g < plan_.map().n_agents(), "Fabric: Byzantine id out of range");
    }
    common::ensure(config_.batch_k >= 1 && config_.batch_k <= pipeline::k_max_batch,
                   "Fabric: batch_k out of range");
    common::ensure(config_.tampers.empty() || pipelined(),
                   "Fabric: tampers require pipelined mode (batch_k > 1)");
    for (const auto& [g, tamper] : config_.tampers) {
        common::ensure(g >= 0 && g < plan_.map().n_agents(), "Fabric: tamper id out of range");
        (void)tamper;
    }
    // The front door's own validation names the offending Ingest_config
    // field, so a bad Fabric_config::ingest can never construct a fabric.
    if (config_.ingest.has_value()) config_.ingest->validate();
    config_.transport.validate();
}

Fabric::Fabric(Shard_map map, std::vector<std::unique_ptr<authority::Agent_behavior>> behaviors,
               Fabric_config config)
    : plan_{std::move(map)}, config_{std::move(config)}, executor_{config_.threads}
{
    validate_config();
    common::ensure(config_.behavior_factory == nullptr && config_.rebalance == nullptr,
                   "Fabric: a static fabric cannot rebuild shards — use the elastic "
                   "constructor (behavior factory) for rebalancing");
    if (config_.trace || config_.watchdog.has_value()) config_.telemetry = true;
    if (config_.watchdog.has_value()) watchdog_.emplace(*config_.watchdog);
    build_all(Authority_router::partition_behaviors(plan_.map(), std::move(behaviors)));
}

Fabric::Fabric(Shard_map initial, Fabric_config config)
    : plan_{std::move(initial)}, config_{std::move(config)}, executor_{config_.threads}
{
    validate_config();
    common::ensure(config_.behavior_factory != nullptr,
                   "Fabric: elastic construction requires a behavior factory");
    if (config_.trace || config_.watchdog.has_value()) config_.telemetry = true;
    if (config_.watchdog.has_value()) watchdog_.emplace(*config_.watchdog);
    std::vector<std::vector<std::unique_ptr<authority::Agent_behavior>>> per_shard;
    per_shard.reserve(static_cast<std::size_t>(plan_.map().n_shards()));
    for (int s = 0; s < plan_.map().n_shards(); ++s) {
        per_shard.push_back(mint_behaviors(plan_.map(), s));
    }
    build_all(std::move(per_shard));
    if (config_.rebalance != nullptr) rebalancer_.emplace(config_.rebalance);
}

std::vector<std::unique_ptr<authority::Agent_behavior>>
Fabric::mint_behaviors(const Shard_map& map, int s) const
{
    const std::vector<common::Agent_id>& members = map.members(s);
    std::vector<std::unique_ptr<authority::Agent_behavior>> behaviors;
    behaviors.reserve(members.size());
    for (const common::Agent_id g : members) {
        behaviors.push_back(config_.behavior_factory(g));
    }
    return behaviors;
}

Fabric::Built_group
Fabric::build_group(const Shard_plan& plan, int s,
                    std::vector<std::unique_ptr<authority::Agent_behavior>> behaviors) const
{
    const Shard_map& map = plan.map();
    const std::vector<common::Agent_id>& members = map.members(s);
    authority::Game_spec spec = config_.spec_factory(s, members);
    common::ensure(spec.game != nullptr, "Fabric: shard spec factory returned a null game");
    common::ensure(spec.game->n_agents() == static_cast<int>(members.size()),
                   "Fabric: shard game size must match the shard population");

    std::set<common::Processor_id> local_byzantine;
    for (const common::Agent_id g : config_.byzantine) {
        if (map.shard_of(g) == s) local_byzantine.insert(map.local_of(g));
    }

    Built_group built;
    built.optimum = enumerable_optimum_cost(*spec.game);

    common::Rng shard_rng{common::derive_seed(config_.seed, static_cast<std::uint64_t>(s),
                                              static_cast<std::uint64_t>(plan.epoch()))};
    sim::Net_model net = config_.net;
    net.seed = common::derive_seed(net.seed, static_cast<std::uint64_t>(s),
                                   static_cast<std::uint64_t>(plan.epoch()));
    if (pipelined()) {
        std::map<common::Processor_id, pipeline::Tamper> local_tampers;
        for (const auto& [g, tamper] : config_.tampers) {
            if (map.shard_of(g) == s) local_tampers.emplace(map.local_of(g), tamper);
        }
        built.group = std::make_unique<pipeline::Pipeline_authority>(
            std::move(spec), config_.f, config_.batch_k, std::move(behaviors), local_byzantine,
            config_.punishment, std::move(shard_rng), config_.byzantine_factory,
            config_.ic_factory, std::move(local_tampers), std::move(net));
    } else {
        built.group = std::make_unique<authority::Distributed_authority>(
            std::move(spec), config_.f, std::move(behaviors), local_byzantine, config_.punishment,
            std::move(shard_rng), config_.byzantine_factory, config_.ic_factory, std::move(net));
    }
    // Every group gets its own cross-boundary link, minted fresh like the
    // group itself — ring state never leaks across epochs.
    built.group->set_wire(wire::make_transport(config_.transport));
    return built;
}

void Fabric::build_all(
    std::vector<std::vector<std::unique_ptr<authority::Agent_behavior>>> per_shard)
{
    ledgers_.resize(static_cast<std::size_t>(plan_.map().n_agents()));
    shards_.clear();
    shards_.reserve(static_cast<std::size_t>(plan_.map().n_shards()));
    optimum_costs_.assign(static_cast<std::size_t>(plan_.map().n_shards()), std::nullopt);
    for (int s = 0; s < plan_.map().n_shards(); ++s) {
        Built_group built =
            build_group(plan_, s, std::move(per_shard[static_cast<std::size_t>(s)]));
        shards_.push_back(std::move(built.group));
        optimum_costs_[static_cast<std::size_t>(s)] = built.optimum;
    }
    if (config_.telemetry) {
        fabric_sink_ = std::make_unique<telemetry::Telemetry_sink>(
            telemetry::Telemetry_sink::Scope{-1, plan_.epoch()});
        if (config_.trace) {
            fabric_sink_->enable_tracer();
            fabric_run_span_ = fabric_sink_->tracer()->begin_span("fabric_run", 0);
        }
        shard_sinks_.clear();
        for (int s = 0; s < plan_.map().n_shards(); ++s) {
            shard_sinks_.push_back(std::make_unique<telemetry::Telemetry_sink>(
                telemetry::Telemetry_sink::Scope{s, plan_.epoch()}));
            // The tracer must exist before set_telemetry: groups cache the
            // sink's tracer pointer at attach time.
            if (config_.trace) shard_sinks_.back()->enable_tracer();
            shards_[static_cast<std::size_t>(s)]->set_telemetry(
                shard_sinks_.back().get());
        }
    }
    if (config_.ingest.has_value()) {
        inlets_.clear();
        for (int s = 0; s < plan_.map().n_shards(); ++s) {
            telemetry::Telemetry_sink* sink =
                config_.telemetry ? shard_sinks_[static_cast<std::size_t>(s)].get() : nullptr;
            inlets_.push_back(std::make_unique<ingest::Shard_inlet>(*config_.ingest, sink));
        }
    }
    rebuild_router();
}

ingest::Submit_result Fabric::submit(const ingest::Submission& sub)
{
    common::ensure(ingest_enabled(), "Fabric::submit: config.ingest not set");
    common::ensure(sub.agent >= 0 && sub.agent < n_agents(),
                   "Fabric::submit: agent out of range");
    const int s = plan_.map().shard_of(sub.agent);
    ingest::Shard_inlet& inlet = *inlets_[static_cast<std::size_t>(s)];
    if (ledgers_[static_cast<std::size_t>(sub.agent)].expelled ||
        router_->is_disconnected(sub.agent)) {
        if (static_cast<std::size_t>(s) < shard_sinks_.size() &&
            shard_sinks_[static_cast<std::size_t>(s)] != nullptr) {
            shard_sinks_[static_cast<std::size_t>(s)]->counter("ingest.shed_expelled") += 1;
        }
        return {ingest::Submit_status::shed, 0, inlet.health(), inlet.depth()};
    }
    return inlet.offer(sub, ingest_seq_++, shards_[static_cast<std::size_t>(s)]->now());
}

int Fabric::pump_ingest()
{
    common::ensure(ingest_enabled(), "Fabric::pump_ingest: config.ingest not set");
    const int service = config_.ingest->window_batches * config_.batch_k;
    std::vector<std::vector<ingest::Shard_inlet::Pending>> taken(
        static_cast<std::size_t>(n_shards()));
    std::vector<common::Pulse> from(static_cast<std::size_t>(n_shards()), 0);
    std::vector<std::function<void()>> jobs;
    int total = 0;
    for (int s = 0; s < n_shards(); ++s) {
        from[static_cast<std::size_t>(s)] = shards_[static_cast<std::size_t>(s)]->now();
        taken[static_cast<std::size_t>(s)] = inlets_[static_cast<std::size_t>(s)]->take(
            service, from[static_cast<std::size_t>(s)]);
        const int m = static_cast<int>(taken[static_cast<std::size_t>(s)].size());
        total += m;
        if (m == 0) continue;
        authority::Authority_group* group = shards_[static_cast<std::size_t>(s)].get();
        jobs.push_back([group, m] { group->run_plays(m); });
    }
    executor_.run_all(jobs);
    for (int s = 0; s < n_shards(); ++s) {
        ingest::Shard_inlet& inlet = *inlets_[static_cast<std::size_t>(s)];
        const common::Pulse landed = shards_[static_cast<std::size_t>(s)]->now();
        for (const ingest::Shard_inlet::Pending& p : taken[static_cast<std::size_t>(s)]) {
            inlet.complete(p, landed);
        }
        inlet.end_window(landed);
        const int m = static_cast<int>(taken[static_cast<std::size_t>(s)].size());
        if (m > 0 && fabric_sink_ != nullptr && fabric_sink_->tracer() != nullptr) {
            // Fabric-track ticks are the served shard's engine pulses, same
            // convention as the quiesce spans.
            fabric_sink_->tracer()->add_span("ingest_window",
                                             from[static_cast<std::size_t>(s)], landed,
                                             fabric_run_span_, s, m);
        }
    }
    if (fabric_sink_ != nullptr) fabric_sink_->counter("ingest.windows") += 1;
    poll_watchdog();
    return total;
}

const ingest::Shard_inlet& Fabric::inlet(int s) const
{
    common::ensure(ingest_enabled(), "Fabric::inlet: config.ingest not set");
    if (s < 0 || s >= n_shards()) {
        throw common::Contract_error{"Fabric::inlet: shard " + std::to_string(s) +
                                     " out of range [0, " + std::to_string(n_shards()) + ")"};
    }
    return *inlets_[static_cast<std::size_t>(s)];
}

ingest::Ingest_totals Fabric::ingest_totals() const
{
    ingest::Ingest_totals out = retired_ingest_;
    for (const auto& inlet : inlets_) out.fold(inlet->totals());
    return out;
}

void Fabric::rebuild_router()
{
    std::vector<const authority::Authority_group*> shard_views;
    shard_views.reserve(shards_.size());
    for (const auto& shard : shards_) shard_views.push_back(shard.get());
    router_ = std::make_unique<Authority_router>(plan_.map(), std::move(shard_views));
}

const authority::Authority_group& Fabric::shard(int s) const
{
    if (s < 0 || s >= n_shards()) {
        throw common::Contract_error{"Fabric::shard: shard " + std::to_string(s) +
                                     " out of range [0, " + std::to_string(n_shards()) + ")"};
    }
    return *shards_[static_cast<std::size_t>(s)];
}

void Fabric::run_pulses(common::Pulse count)
{
    std::vector<std::function<void()>> jobs;
    jobs.reserve(shards_.size());
    for (auto& shard : shards_) {
        jobs.push_back([&shard, count] { shard->run_pulses(count); });
    }
    executor_.run_all(jobs);
    poll_watchdog();
}

void Fabric::run_plays(int plays)
{
    std::vector<std::function<void()>> jobs;
    jobs.reserve(shards_.size());
    for (auto& shard : shards_) {
        jobs.push_back([&shard, plays] { shard->run_plays(plays); });
    }
    executor_.run_all(jobs);
    poll_watchdog();
}

void Fabric::inject_transient_fault()
{
    for (auto& shard : shards_) shard->inject_transient_fault();
}

bool Fabric::maybe_rebalance()
{
    if (!rebalancer_.has_value()) return false;
    // The policy's load view is O(shards) to assemble — counts only, not the
    // O(total plays) cost/standings fold a full harvest() performs.
    std::vector<Shard_load> loads;
    loads.reserve(static_cast<std::size_t>(n_shards()));
    for (int s = 0; s < n_shards(); ++s) {
        const authority::Authority_group& group = *shards_[static_cast<std::size_t>(s)];
        Shard_load load;
        load.shard = s;
        load.agents = group.n_agents();
        load.plays = static_cast<std::int64_t>(group.agreed_plays().size());
        load.messages = group.traffic().messages;
        if (!inlets_.empty()) load.backlog = inlets_[static_cast<std::size_t>(s)]->depth();
        loads.push_back(load);
    }
    const Rebalance_plan proposal = rebalancer_->propose(plan_, std::move(loads));
    if (proposal.empty()) return false;
    if (fabric_sink_ != nullptr) {
        // Journaled before the floor check, so proposals the 3f+1 floor
        // rejects below remain visible as proposed-but-not-applied.
        telemetry::Event e;
        e.kind = telemetry::Event_kind::rebalance_proposed;
        e.a = static_cast<std::int64_t>(proposal.migrations.size());
        e.b = static_cast<std::int64_t>(proposal.splits.size() + proposal.merges.size());
        fabric_sink_->event(std::move(e));
    }
    // Transform with the structural floor only: a *malformed* plan (stale
    // shard ids, duplicate movers, ...) is a policy bug and propagates. A
    // well-formed plan whose resulting groups would dip under this fabric's
    // 3f+1 replica floor — which the policy cannot know — is skipped
    // (deterministically, every window it recurs); explicit apply_rebalance
    // stays strict about the floor too.
    Shard_plan next = plan_.apply(proposal, /*min_members=*/1);
    const int floor = 3 * config_.f + 1;
    for (const int size : next.map().shard_sizes()) {
        if (size < floor) return false;
    }
    apply_next_plan(std::move(next));
    return true;
}

Rebalance_report Fabric::apply_rebalance(const Rebalance_plan& plan)
{
    return apply_next_plan(plan_.apply(plan, 3 * config_.f + 1));
}

Rebalance_report Fabric::apply_next_plan(Shard_plan next)
{
    common::ensure(config_.behavior_factory != nullptr,
                   "Fabric::apply_rebalance: static fabric cannot rebuild shards");
    const std::vector<int> carried = carried_shards(plan_.map(), next.map());

    const int old_count = plan_.map().n_shards();
    std::vector<bool> keep(static_cast<std::size_t>(old_count), false);
    for (const int old_shard : carried) {
        if (old_shard >= 0) keep[static_cast<std::size_t>(old_shard)] = true;
    }

    // ---- Build every replacement group first (the only step that runs
    // user-supplied factories): a throw here leaves the fabric untouched.
    std::vector<std::unique_ptr<authority::Authority_group>> next_groups(
        static_cast<std::size_t>(next.map().n_shards()));
    std::vector<std::optional<double>> next_optima(
        static_cast<std::size_t>(next.map().n_shards()), std::nullopt);
    Rebalance_report report;
    report.epoch = next.epoch();
    report.moves = next.pending();
    for (std::size_t s = 0; s < next_groups.size(); ++s) {
        if (carried[s] >= 0) continue;
        Built_group built = build_group(next, static_cast<int>(s),
                                        mint_behaviors(next.map(), static_cast<int>(s)));
        next_groups[s] = std::move(built.group);
        next_optima[s] = built.optimum;
        ++report.rebuilt;
    }

    // ---- Quiesce every retiring group to its play-window edge (concurrent
    // across the pool; each group's pulse count is its own, so the schedule
    // is result-invariant).
    std::vector<common::Pulse> quiesce(static_cast<std::size_t>(old_count), 0);
    std::vector<common::Pulse> quiesce_from(static_cast<std::size_t>(old_count), 0);
    std::vector<std::function<void()>> jobs;
    for (int s = 0; s < old_count; ++s) {
        if (keep[static_cast<std::size_t>(s)]) continue;
        const common::Pulse pulses = shards_[static_cast<std::size_t>(s)]->pulses_to_window_edge();
        quiesce[static_cast<std::size_t>(s)] = pulses;
        quiesce_from[static_cast<std::size_t>(s)] = shards_[static_cast<std::size_t>(s)]->now();
        authority::Authority_group* group = shards_[static_cast<std::size_t>(s)].get();
        jobs.push_back([group, pulses] { group->run_pulses(pulses); });
    }
    executor_.run_all(jobs);

    // ---- Retire: fold each quiesced group into the carried ledger. A
    // retiring shard's queued submissions are never shed — they drain here
    // and are re-adopted (in global seq order) by the successor shards that
    // own their agents after the swap below.
    std::vector<ingest::Shard_inlet::Pending> rerouted;
    for (int s = 0; s < old_count; ++s) {
        if (keep[static_cast<std::size_t>(s)]) continue;
        if (!inlets_.empty()) {
            ingest::Shard_inlet& inlet = *inlets_[static_cast<std::size_t>(s)];
            std::vector<ingest::Shard_inlet::Pending> drained = inlet.drain();
            rerouted.insert(rerouted.end(), std::make_move_iterator(drained.begin()),
                            std::make_move_iterator(drained.end()));
            retired_ingest_.fold(inlet.totals());
        }
        const common::Pulse pulses = quiesce[static_cast<std::size_t>(s)];
        report.max_quiesce_pulses = std::max(report.max_quiesce_pulses, pulses);
        if (fabric_sink_ != nullptr) {
            fabric_sink_->histogram("rebalance.quiesce_pulses").record(pulses);
            if (auto* tr = fabric_sink_->tracer()) {
                // Fabric-track ticks are the paused group's engine pulses —
                // each quiesce span lives on the clock of the shard it paused.
                tr->add_span("rebalance_quiesce", quiesce_from[static_cast<std::size_t>(s)],
                             quiesce_from[static_cast<std::size_t>(s)] + pulses,
                             fabric_run_span_, s, pulses);
            }
        }
        if (watchdog_.has_value()) {
            // Last look at the retiring sink (its final interval would
            // otherwise go unobserved), then the elastic contract itself:
            // a quiesce must fit one play window.
            if (static_cast<std::size_t>(s) < shard_sinks_.size() &&
                shard_sinks_[static_cast<std::size_t>(s)] != nullptr) {
                watchdog_->observe(*shard_sinks_[static_cast<std::size_t>(s)]);
            }
            watchdog_->observe_quiesce(
                s, plan_.epoch(), pulses,
                shards_[static_cast<std::size_t>(s)]->pulses_for_plays(1));
        }
        retire_group(s);
        ++report.retired;
    }

    // ---- Swap the topology: adopt carried groups under their new ids. A
    // carried group keeps its sink — relabeled to its new (shard, epoch)
    // scope — so its registries stay continuous across the transition while
    // events before and after the edge carry the tags they happened under.
    std::vector<std::unique_ptr<telemetry::Telemetry_sink>> next_sinks(
        config_.telemetry ? next_groups.size() : 0);
    std::vector<std::unique_ptr<ingest::Shard_inlet>> next_inlets(
        config_.ingest.has_value() ? next_groups.size() : 0);
    for (std::size_t s = 0; s < next_groups.size(); ++s) {
        if (carried[s] >= 0) {
            next_groups[s] = std::move(shards_[static_cast<std::size_t>(carried[s])]);
            next_optima[s] = optimum_costs_[static_cast<std::size_t>(carried[s])];
            if (config_.ingest.has_value()) {
                // A carried shard keeps its inlet: queue, bucket, health, and
                // totals stay continuous across the relabel.
                next_inlets[s] = std::move(inlets_[static_cast<std::size_t>(carried[s])]);
            }
            if (config_.telemetry) {
                next_sinks[s] = std::move(shard_sinks_[static_cast<std::size_t>(carried[s])]);
                const telemetry::Telemetry_sink::Scope old = next_sinks[s]->scope();
                next_sinks[s]->set_scope({static_cast<int>(s), next.epoch()});
                if (watchdog_.has_value()) {
                    watchdog_->adopt_scope(old.shard, old.epoch, static_cast<int>(s),
                                           next.epoch());
                }
            }
            ++report.carried;
        } else if (config_.telemetry) {
            next_sinks[s] = std::make_unique<telemetry::Telemetry_sink>(
                telemetry::Telemetry_sink::Scope{static_cast<int>(s), next.epoch()});
            // Tracer before attach: the group caches the pointer then.
            if (config_.trace) next_sinks[s]->enable_tracer();
            next_groups[s]->set_telemetry(next_sinks[s].get());
        }
        if (carried[s] < 0 && config_.ingest.has_value()) {
            // A rebuilt shard's inlet starts fresh but quiesce-degraded: the
            // transition cost service time its (empty) queue cannot show, so
            // admission opens conservatively for one window.
            next_inlets[s] = std::make_unique<ingest::Shard_inlet>(
                *config_.ingest, config_.telemetry ? next_sinks[s].get() : nullptr);
            next_inlets[s]->note_quiesce();
        }
    }
    plan_ = std::move(next);
    shards_ = std::move(next_groups);
    optimum_costs_ = std::move(next_optima);
    shard_sinks_ = std::move(next_sinks);
    inlets_ = std::move(next_inlets);

    // ---- Finish the rebuilt shards against the now-folded ledger:
    // expulsion is permanent, so re-expel members disconnected in any
    // earlier epoch, then boot each fresh group's clock so it joins the
    // fabric's play cadence on the next fabric step.
    for (int s = 0; s < plan_.map().n_shards(); ++s) {
        if (carried[static_cast<std::size_t>(s)] >= 0) continue;
        const std::vector<common::Agent_id>& members = plan_.map().members(s);
        for (common::Agent_id local = 0; local < static_cast<int>(members.size()); ++local) {
            if (ledgers_[static_cast<std::size_t>(members[static_cast<std::size_t>(local)])]
                    .expelled) {
                shards_[static_cast<std::size_t>(s)]->expel_agent(local);
            }
        }
        shards_[static_cast<std::size_t>(s)]->run_pulses(1);
    }
    rebuild_router();

    // ---- Re-admit the retired shards' in-flight submissions into their
    // agents' new owners, in fabric-global seq order (FIFO survives the
    // transition). adopt() bypasses admission — queued work is never shed by
    // a rebalance, even if a merge transiently overfills the target queue.
    if (!rerouted.empty()) {
        std::sort(rerouted.begin(), rerouted.end(),
                  [](const ingest::Shard_inlet::Pending& a,
                     const ingest::Shard_inlet::Pending& b) { return a.seq < b.seq; });
        for (ingest::Shard_inlet::Pending& p : rerouted) {
            const int t = plan_.map().shard_of(p.sub.agent);
            inlets_[static_cast<std::size_t>(t)]->adopt(
                std::move(p), shards_[static_cast<std::size_t>(t)]->now());
        }
    }

    if (fabric_sink_ != nullptr) {
        fabric_sink_->set_scope({-1, plan_.epoch()});
        telemetry::Event e;
        e.kind = telemetry::Event_kind::rebalance_applied;
        e.a = static_cast<std::int64_t>(report.moves.size());
        e.b = report.rebuilt;
        fabric_sink_->event(std::move(e));
        fabric_sink_->counter("rebalance.applied") += 1;
    }
    poll_watchdog();

    last_rebalance_ = report;
    return report;
}

void Fabric::retire_group(int s)
{
    retired_samples_.push_back(harvest(s));
    const authority::Authority_group& group = *shards_[static_cast<std::size_t>(s)];
    const std::vector<common::Agent_id>& members = plan_.map().members(s);
    const std::vector<authority::Play_record>& plays = group.agreed_plays();
    const std::vector<authority::Standing>& standings = group.agreed_standings();
    for (common::Agent_id local = 0; local < static_cast<int>(members.size()); ++local) {
        Agent_ledger& ledger =
            ledgers_[static_cast<std::size_t>(members[static_cast<std::size_t>(local)])];
        for (const authority::Play_record& play : plays) {
            ledger.history.push_back(Authority_router::play_view(play, local));
        }
        ledger.carried = authority::merge_standings(
            ledger.carried, standings[static_cast<std::size_t>(local)]);
        if (group.is_agent_disconnected(local)) ledger.expelled = true;
    }
    if (static_cast<std::size_t>(s) < shard_sinks_.size() &&
        shard_sinks_[static_cast<std::size_t>(s)] != nullptr) {
        const telemetry::Telemetry_sink& sink = *shard_sinks_[static_cast<std::size_t>(s)];
        if (sink.tracer() != nullptr && !sink.tracer()->empty()) {
            retired_spans_.push_back(
                {sink.scope().shard, sink.scope().epoch, sink.tracer()->spans()});
        }
        for (telemetry::Evidence ev : sink.evidence()) {
            // Local slot ids are stable across carries and merge relabels, so
            // the retiring membership list maps each slot to its global id.
            const common::Agent_id global = members[static_cast<std::size_t>(ev.agent)];
            ev.agent = global;
            ledgers_[static_cast<std::size_t>(global)].evidence.push_back(std::move(ev));
        }
    }
    shards_[static_cast<std::size_t>(s)].reset();
}

std::vector<Authority_router::Agent_play> Fabric::agent_history(common::Agent_id global) const
{
    common::ensure(global >= 0 && global < n_agents(), "Fabric::agent_history: id out of range");
    std::vector<Authority_router::Agent_play> history =
        ledgers_[static_cast<std::size_t>(global)].history;
    const std::vector<Authority_router::Agent_play> current = router_->plays_of(global);
    history.insert(history.end(), current.begin(), current.end());
    return history;
}

authority::Standing Fabric::agent_standing(common::Agent_id global) const
{
    common::ensure(global >= 0 && global < n_agents(), "Fabric::agent_standing: id out of range");
    return authority::merge_standings(ledgers_[static_cast<std::size_t>(global)].carried,
                                      router_->standing(global));
}

bool Fabric::agent_disconnected(common::Agent_id global) const
{
    common::ensure(global >= 0 && global < n_agents(),
                   "Fabric::agent_disconnected: id out of range");
    return ledgers_[static_cast<std::size_t>(global)].expelled ||
           router_->is_disconnected(global);
}

metrics::Shard_sample Fabric::harvest(int s) const
{
    const authority::Authority_group& group = shard(s);
    metrics::Shard_sample sample;
    sample.shard = s;
    sample.epoch = plan_.epoch();
    sample.agents = group.n_agents();
    sample.traffic = group.traffic();

    const auto& plays = group.agreed_plays();
    sample.plays = static_cast<std::int64_t>(plays.size());
    for (const authority::Play_record& play : plays) {
        sample.social_cost += game::social_cost(*group.spec().game, play.outcome);
    }
    if (optimum_costs_[static_cast<std::size_t>(s)].has_value()) {
        sample.optimal_cost =
            static_cast<double>(sample.plays) * *optimum_costs_[static_cast<std::size_t>(s)];
    }
    for (const authority::Standing& standing : group.agreed_standings()) {
        sample.fouls += standing.fouls;
    }
    // Count only expulsions this group performed: an expulsion carried into
    // a rebuilt group (re-enacted at build time) was already counted by the
    // retiring group that ordered it — the carried ledger flag marks those,
    // since retire_group folds it only after harvesting.
    const std::vector<common::Agent_id>& members = plan_.map().members(s);
    for (common::Agent_id local = 0; local < static_cast<int>(members.size()); ++local) {
        const bool carried_expulsion =
            ledgers_[static_cast<std::size_t>(members[static_cast<std::size_t>(local)])].expelled;
        if (group.is_agent_disconnected(local) && !carried_expulsion) ++sample.disconnected;
    }
    if (static_cast<std::size_t>(s) < shard_sinks_.size() &&
        shard_sinks_[static_cast<std::size_t>(s)] != nullptr) {
        sample.telemetry = shard_sinks_[static_cast<std::size_t>(s)]->snapshot();
    }
    return sample;
}

metrics::Fabric_metrics Fabric::report() const
{
    std::vector<metrics::Shard_sample> samples = retired_samples_;
    samples.reserve(samples.size() + static_cast<std::size_t>(n_shards()));
    for (int s = 0; s < n_shards(); ++s) samples.push_back(harvest(s));
    metrics::Fabric_metrics out = metrics::aggregate_shards(std::move(samples));
    if (fabric_sink_ != nullptr) {
        telemetry::merge_into(out.telemetry, fabric_sink_->snapshot());
    }
    return out;
}

telemetry::Report Fabric::telemetry_report() const
{
    telemetry::Report report;
    if (fabric_sink_ != nullptr) report.fabric = fabric_sink_->snapshot();
    for (const metrics::Shard_sample& sample : retired_samples_) {
        if (!sample.telemetry.empty()) {
            report.shards.push_back({sample.shard, sample.epoch, sample.telemetry});
        }
    }
    for (int s = 0; s < n_shards(); ++s) {
        if (static_cast<std::size_t>(s) < shard_sinks_.size() &&
            shard_sinks_[static_cast<std::size_t>(s)] != nullptr) {
            report.shards.push_back(
                {s, plan_.epoch(), shard_sinks_[static_cast<std::size_t>(s)]->snapshot()});
        }
    }
    std::stable_sort(report.shards.begin(), report.shards.end(),
                     [](const telemetry::Scoped_snapshot& a, const telemetry::Scoped_snapshot& b) {
                         return std::pair{a.epoch, a.shard} < std::pair{b.epoch, b.shard};
                     });
    for (common::Agent_id g = 0; g < n_agents(); ++g) {
        std::vector<telemetry::Evidence> chains = provenance(g);
        report.provenance.insert(report.provenance.end(),
                                 std::make_move_iterator(chains.begin()),
                                 std::make_move_iterator(chains.end()));
    }
    if (watchdog_.has_value()) report.alerts = watchdog_->alerts();
    return report;
}

std::vector<telemetry::Evidence> Fabric::provenance(common::Agent_id global) const
{
    common::ensure(global >= 0 && global < n_agents(), "Fabric::provenance: id out of range");
    std::vector<telemetry::Evidence> chains = ledgers_[static_cast<std::size_t>(global)].evidence;
    const int s = plan_.map().shard_of(global);
    if (static_cast<std::size_t>(s) < shard_sinks_.size() &&
        shard_sinks_[static_cast<std::size_t>(s)] != nullptr) {
        const common::Agent_id local = plan_.map().local_of(global);
        for (telemetry::Evidence ev : shard_sinks_[static_cast<std::size_t>(s)]->evidence()) {
            if (ev.agent != local) continue;
            ev.agent = global;
            chains.push_back(std::move(ev));
        }
    }
    return chains;
}

telemetry::Trace_report Fabric::trace_report() const
{
    telemetry::Trace_report report;
    if (fabric_sink_ != nullptr && fabric_sink_->tracer() != nullptr) {
        report.fabric = fabric_sink_->tracer()->spans();
    }
    report.shards = retired_spans_;
    for (int s = 0; s < n_shards(); ++s) {
        if (static_cast<std::size_t>(s) >= shard_sinks_.size() ||
            shard_sinks_[static_cast<std::size_t>(s)] == nullptr) {
            continue;
        }
        const telemetry::Tracer* tracer = shard_sinks_[static_cast<std::size_t>(s)]->tracer();
        if (tracer == nullptr || tracer->empty()) continue;
        report.shards.push_back({s, plan_.epoch(), tracer->spans()});
    }
    std::stable_sort(report.shards.begin(), report.shards.end(),
                     [](const telemetry::Scoped_spans& a, const telemetry::Scoped_spans& b) {
                         return std::pair{a.epoch, a.shard} < std::pair{b.epoch, b.shard};
                     });
    return report;
}

const std::vector<telemetry::Alert>& Fabric::watchdog_alerts() const
{
    static const std::vector<telemetry::Alert> k_no_alerts;
    return watchdog_.has_value() ? watchdog_->alerts() : k_no_alerts;
}

void Fabric::poll_watchdog()
{
    if (!watchdog_.has_value()) return;
    if (fabric_sink_ != nullptr) watchdog_->observe(*fabric_sink_);
    for (const auto& sink : shard_sinks_) {
        if (sink != nullptr) watchdog_->observe(*sink);
    }
}

} // namespace ga::shard
