// Static partition of a global agent population across authority shards.
//
// The paper runs one game authority over one replica group; the fabric
// (fabric.h) runs many concurrently, and this map answers the one question
// everything else hangs off: *which* shard owns a given agent. The partition
// is fixed at construction (agents do not migrate), mirroring the paper's §2
// assumption that every agent is bound to a unique processor — here, to a
// unique processor *within its shard's replica group*.
//
// Assignment is pluggable: contiguous blocks model per-region sharding, a
// hash policy spreads adversarial id patterns, and an explicit vector covers
// per-game assignment (each game's player set is its own shard).
#ifndef GA_SHARD_SHARD_MAP_H
#define GA_SHARD_SHARD_MAP_H

#include <functional>
#include <vector>

#include "common/ids.h"

namespace ga::shard {

/// Produces the whole partition at once: element g is the shard in
/// [0, n_shards) owning global agent g. Every shard must be assigned at
/// least one agent (an empty replica group cannot run agreement).
using Assignment_policy = std::function<std::vector<int>(int n_agents, int n_shards)>;

/// Contiguous blocks of near-equal size (per-region sharding; the default).
Assignment_policy assign_contiguous();

/// Round-robin by id: shard = global mod n_shards.
Assignment_policy assign_round_robin();

/// Balanced hash spread: agents are ordered by a SplitMix64 hash of
/// (id, salt) and block-partitioned in that order, so shard sizes stay
/// within one of each other while membership is decorrelated from any
/// structure in the id space (adversarially chosen ids cannot crowd or
/// starve one shard).
Assignment_policy assign_hashed(std::uint64_t salt = 0);

class Shard_map {
public:
    /// Partition `n_agents` agents into `n_shards` shards under `policy`.
    /// Every shard must end up non-empty (an empty replica group cannot run
    /// agreement).
    Shard_map(int n_agents, int n_shards, const Assignment_policy& policy = assign_contiguous());

    /// Explicit per-game/per-region assignment: `shard_of_agent[g]` is the
    /// shard owning global agent g. Shard ids must be dense in [0, max+1).
    explicit Shard_map(const std::vector<int>& shard_of_agent);

    [[nodiscard]] int n_agents() const { return static_cast<int>(shard_of_.size()); }
    [[nodiscard]] int n_shards() const { return static_cast<int>(members_.size()); }

    /// Shard owning global agent g.
    [[nodiscard]] int shard_of(common::Agent_id global) const;

    /// g's index inside its shard's replica group (the Agent_id the shard's
    /// Distributed_authority knows it by).
    [[nodiscard]] common::Agent_id local_of(common::Agent_id global) const;

    /// Inverse mapping: the global id of shard member `local`.
    [[nodiscard]] common::Agent_id global_of(int shard, common::Agent_id local) const;

    /// Global ids owned by `shard`, in ascending order (== local id order).
    /// Throws Contract_error naming the shard id when out of range.
    [[nodiscard]] const std::vector<common::Agent_id>& members(int shard) const;

    /// Shard population sizes (load-balance inspection).
    [[nodiscard]] std::vector<int> shard_sizes() const;

    /// The raw partition vector (element g = shard owning global agent g) —
    /// the value a Shard_plan transforms when agents migrate.
    [[nodiscard]] const std::vector<int>& assignment() const { return shard_of_; }

private:
    void build_from(const std::vector<int>& shard_of_agent, int n_shards);

    std::vector<int> shard_of_;                          ///< global -> shard
    std::vector<common::Agent_id> local_of_;             ///< global -> local
    std::vector<std::vector<common::Agent_id>> members_; ///< shard -> globals
};

} // namespace ga::shard

#endif // GA_SHARD_SHARD_MAP_H
