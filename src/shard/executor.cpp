#include "shard/executor.h"

#include "common/ensure.h"

namespace ga::shard {

Executor::Executor(int threads) : threads_{threads}
{
    common::ensure(threads >= 1, "Executor: at least one thread");
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    try {
        for (int t = 1; t < threads; ++t) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    } catch (...) {
        // A failed spawn (resource exhaustion) must not leave the already
        // started workers joinable: ~Executor never runs on a throwing ctor.
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            stop_ = true;
        }
        batch_cv_.notify_all();
        for (std::thread& worker : workers_) worker.join();
        throw;
    }
}

Executor::~Executor()
{
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        stop_ = true;
    }
    batch_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void Executor::worker_loop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock{mutex_};
            batch_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
        }
        drain();
    }
}

void Executor::drain()
{
    for (;;) {
        const std::function<void()>* job = nullptr;
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            if (jobs_ == nullptr || next_ >= jobs_->size()) return;
            job = &(*jobs_)[next_++];
        }
        try {
            (*job)();
        } catch (...) {
            const std::lock_guard<std::mutex> lock{mutex_};
            if (!error_) error_ = std::current_exception();
        }
        {
            const std::lock_guard<std::mutex> lock{mutex_};
            if (--unfinished_ == 0) {
                jobs_ = nullptr; // batch over; late-waking workers see no work
                done_cv_.notify_all();
            }
        }
    }
}

void Executor::run_all(const std::vector<std::function<void()>>& jobs)
{
    if (jobs.empty()) return;
    {
        const std::lock_guard<std::mutex> lock{mutex_};
        common::ensure(jobs_ == nullptr, "Executor::run_all: not reentrant");
        jobs_ = &jobs;
        next_ = 0;
        unfinished_ = jobs.size();
        error_ = nullptr;
        ++generation_;
    }
    batch_cv_.notify_all();
    drain();
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock{mutex_};
        done_cv_.wait(lock, [&] { return unfinished_ == 0; });
        error = error_;
        error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
}

} // namespace ga::shard
