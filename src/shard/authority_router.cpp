#include "shard/authority_router.h"

#include <algorithm>

namespace ga::shard {

Authority_router::Authority_router(const Shard_map& map,
                                   std::vector<const authority::Authority_group*> shards)
    : map_{map}, shards_{std::move(shards)}
{
    common::ensure(static_cast<int>(shards_.size()) == map_.n_shards(),
                   "Authority_router: one authority group per shard");
    for (int s = 0; s < map_.n_shards(); ++s) {
        common::ensure(shards_[static_cast<std::size_t>(s)] != nullptr,
                       "Authority_router: null shard");
        common::ensure(shards_[static_cast<std::size_t>(s)]->n_agents() ==
                           static_cast<int>(map_.members(s).size()),
                       "Authority_router: shard population disagrees with the map");
    }
}

Authority_router::Route Authority_router::locate(common::Agent_id global) const
{
    return Route{map_.shard_of(global), map_.local_of(global)};
}

std::vector<std::vector<std::unique_ptr<authority::Agent_behavior>>>
Authority_router::partition_behaviors(const Shard_map& map,
                                      std::vector<std::unique_ptr<authority::Agent_behavior>> global)
{
    common::ensure(static_cast<int>(global.size()) == map.n_agents(),
                   "partition_behaviors: one behavior slot per global agent");
    std::vector<std::vector<std::unique_ptr<authority::Agent_behavior>>> per_shard(
        static_cast<std::size_t>(map.n_shards()));
    for (int s = 0; s < map.n_shards(); ++s) {
        auto& local = per_shard[static_cast<std::size_t>(s)];
        local.reserve(map.members(s).size());
        for (const common::Agent_id g : map.members(s)) {
            local.push_back(std::move(global[static_cast<std::size_t>(g)]));
        }
    }
    return per_shard;
}

const authority::Authority_group& Authority_router::shard_at(int shard) const
{
    common::ensure(shard >= 0 && shard < static_cast<int>(shards_.size()),
                   "Authority_router: shard out of range");
    return *shards_[static_cast<std::size_t>(shard)];
}

Authority_router::Agent_play Authority_router::play_view(const authority::Play_record& play,
                                                         common::Agent_id local)
{
    Agent_play entry;
    entry.completed_at = play.completed_at;
    entry.action = local < static_cast<int>(play.outcome.size())
                       ? play.outcome[static_cast<std::size_t>(local)]
                       : -1;
    entry.punished =
        std::find(play.punished.begin(), play.punished.end(), local) != play.punished.end();
    return entry;
}

std::vector<Authority_router::Agent_play>
Authority_router::plays_of(common::Agent_id global) const
{
    const Route route = locate(global);
    std::vector<Agent_play> history;
    for (const authority::Play_record& play : shard_at(route.shard).agreed_plays()) {
        history.push_back(play_view(play, route.local));
    }
    return history;
}

const authority::Standing& Authority_router::standing(common::Agent_id global) const
{
    const Route route = locate(global);
    return shard_at(route.shard).agreed_standings()[static_cast<std::size_t>(route.local)];
}

bool Authority_router::is_disconnected(common::Agent_id global) const
{
    const Route route = locate(global);
    return shard_at(route.shard).is_agent_disconnected(route.local);
}

std::vector<common::Agent_id> Authority_router::punished_agents() const
{
    std::vector<common::Agent_id> punished;
    for (int s = 0; s < map_.n_shards(); ++s) {
        const auto& standings = shard_at(s).agreed_standings();
        for (common::Agent_id local = 0; local < static_cast<int>(standings.size()); ++local) {
            if (standings[static_cast<std::size_t>(local)].fouls > 0) {
                punished.push_back(map_.global_of(s, local));
            }
        }
    }
    std::sort(punished.begin(), punished.end());
    return punished;
}

std::int64_t Authority_router::total_plays() const
{
    std::int64_t total = 0;
    for (int s = 0; s < map_.n_shards(); ++s) {
        total += static_cast<std::int64_t>(shard_at(s).agreed_plays().size());
    }
    return total;
}

} // namespace ga::shard
