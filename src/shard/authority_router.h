// Routing front-end of the authority fabric.
//
// Everything addressed by *global* agent id goes through the router, which
// owns the two directions of the sharding boundary:
//
//  - dispatch: a global play population (one Agent_behavior per agent) is
//    partitioned into the per-shard behavior vectors each shard's
//    Distributed_authority is built from;
//  - collection: per-play results — agreed outcomes, punishments, standings,
//    expulsions — are read back from the owning shard via the authority
//    tier's harvesting hooks and re-expressed in global ids.
//
// The router never touches `Distributed_authority::engine()`; the harvesting
// hooks are the entire surface it consumes.
#ifndef GA_SHARD_AUTHORITY_ROUTER_H
#define GA_SHARD_AUTHORITY_ROUTER_H

#include <memory>

#include "authority/authority_group.h"
#include "shard/shard_map.h"

namespace ga::shard {

class Authority_router {
public:
    /// `shards[s]` is shard s's authority group (classic or pipelined — any
    /// Authority_group); one entry per map shard. Both the map and the shards
    /// must outlive the router.
    Authority_router(const Shard_map& map,
                     std::vector<const authority::Authority_group*> shards);

    /// Where a global agent lives: its shard and its id inside it.
    struct Route {
        int shard = -1;
        common::Agent_id local = -1;
    };
    [[nodiscard]] Route locate(common::Agent_id global) const;

    /// Dispatch helper: split a global behavior vector (index = global agent
    /// id; null entries allowed for Byzantine slots) into per-shard vectors
    /// ordered by local id.
    [[nodiscard]] static std::vector<std::vector<std::unique_ptr<authority::Agent_behavior>>>
    partition_behaviors(const Shard_map& map,
                        std::vector<std::unique_ptr<authority::Agent_behavior>> global);

    /// One agent's view of one completed play on its shard.
    struct Agent_play {
        common::Pulse completed_at = 0; ///< shard-local pulse time
        int action = -1;                ///< the agent's agreed action
        bool punished = false;          ///< agent was in the play's foul set

        friend bool operator==(const Agent_play&, const Agent_play&) = default;
    };

    /// One play record reduced to the view of shard member `local`. The
    /// elastic fabric folds retiring groups' histories through this same
    /// reduction, so an agent's pre- and post-migration entries are directly
    /// comparable.
    [[nodiscard]] static Agent_play play_view(const authority::Play_record& play,
                                              common::Agent_id local);

    /// The agent's agreed play history on its *current* shard (the elastic
    /// fabric prepends earlier epochs' folded history for migrated agents).
    [[nodiscard]] std::vector<Agent_play> plays_of(common::Agent_id global) const;

    /// The agent's executive ledger entry on its shard.
    [[nodiscard]] const authority::Standing& standing(common::Agent_id global) const;

    /// True once the agent's shard expelled it from the physical network.
    [[nodiscard]] bool is_disconnected(common::Agent_id global) const;

    /// Global ids punished at least once anywhere in the fabric (ascending).
    [[nodiscard]] std::vector<common::Agent_id> punished_agents() const;

    /// Agreed plays completed across every shard.
    [[nodiscard]] std::int64_t total_plays() const;

    [[nodiscard]] const Shard_map& map() const { return map_; }

private:
    [[nodiscard]] const authority::Authority_group& shard_at(int shard) const;

    const Shard_map& map_;
    std::vector<const authority::Authority_group*> shards_;
};

} // namespace ga::shard

#endif // GA_SHARD_AUTHORITY_ROUTER_H
