// Rebalancing policies for the elastic authority fabric.
//
// The fabric harvests per-shard load every time it is asked to consider a
// rebalance — agreed plays, wire traffic, and shard sizes — and hands the
// numbers to a pluggable policy that answers with a Rebalance_plan (possibly
// empty: no change). Policies are pure functions of the harvested loads and
// the current Shard_plan, so rebalance decisions — like everything else in
// the fabric — are bit-identical across executor widths and repeated runs.
//
// Three stock policies cover the ROADMAP's dynamic-sharding regimes:
//   - load-threshold: split (or drain by migration) the hottest shard once
//     its per-play wire cost pulls away from the fabric mean — the skewed-
//     load absorber;
//   - size-cap: split any shard whose population tops a cap — admission
//     growth control;
//   - explicit: a scripted sequence of plans — operator-driven topology
//     changes and deterministic tests.
#ifndef GA_SHARD_REBALANCER_H
#define GA_SHARD_REBALANCER_H

#include <cstdint>
#include <functional>

#include "shard/shard_plan.h"

namespace ga::shard {

/// One shard's harvested load at a rebalance decision point. `plays` and
/// `messages` cover the current replica group's lifetime (a group rebuilt at
/// an epoch edge restarts both, which conveniently cools freshly split
/// shards down for a window).
struct Shard_load {
    int shard = -1;
    int agents = 0;
    std::int64_t plays = 0;
    std::int64_t messages = 0;
    /// Front-door backlog: submissions queued at the shard's inlet when the
    /// policy was consulted (0 on a fabric without config.ingest).
    std::int64_t backlog = 0;

    /// Wire cost per agreed play — the wall-clock proxy the stock policies
    /// rank shards by (comparable across groups of different ages, unlike
    /// lifetime totals). 0 before the first play completes.
    [[nodiscard]] double cost_per_play() const
    {
        return plays > 0 ? static_cast<double>(messages) / static_cast<double>(plays) : 0.0;
    }
};

/// A rebalance policy: may return an empty plan (leave the topology alone).
using Rebalance_policy =
    std::function<Rebalance_plan(const Shard_plan& plan, const std::vector<Shard_load>& loads)>;

/// Splits the hottest shard in half once its per-play wire cost exceeds
/// `ratio` x the fabric mean; when the shard is too small to split (either
/// half would drop below `min_members`) it drains agents toward the
/// lightest shard instead, as far as `min_members` allows. `min_members`
/// should be at least the fabric's replica-group floor 3f+1 — a looser
/// value cannot crash the fabric (maybe_rebalance skips infeasible
/// proposals) but wastes the policy's work every window.
[[nodiscard]] Rebalance_policy rebalance_load_threshold(double ratio, int min_members);

/// Splits the shard with the deepest front-door backlog once that backlog
/// exceeds `ratio` x the fabric-mean backlog — the ingest hot-spot absorber:
/// overload concentrated on one shard is relieved by halving its population
/// (and with it the submission stream routed to it) instead of shedding
/// harder. Shards too small to split drain toward the lightest shard, as in
/// rebalance_load_threshold. No proposal while total backlog is zero, so the
/// policy is mute exactly when the front door is keeping up.
[[nodiscard]] Rebalance_policy rebalance_ingest_pressure(double ratio, int min_members);

/// Splits every shard whose population exceeds `max_members` in half
/// (repeatedly, one split per shard per epoch), never leaving a side below
/// `min_members`.
[[nodiscard]] Rebalance_policy rebalance_size_cap(int max_members, int min_members);

/// Scripted topology changes: answers `scripted[e]` when consulted at epoch
/// e, and empty plans once the script is exhausted. A pure function of the
/// epoch — copies of the policy and repeated runs see the same sequence, so
/// scripted rebalances stay inside the determinism contract.
[[nodiscard]] Rebalance_policy rebalance_explicit(std::vector<Rebalance_plan> scripted);

/// Thin harness binding a policy to the fabric's load-probe format: holds a
/// validated-non-null policy and normalizes load order before consulting it.
class Rebalancer {
public:
    explicit Rebalancer(Rebalance_policy policy);

    /// Consult the policy (loads are sorted by shard id first, so callers
    /// may assemble them in any order); empty plan = keep the topology.
    [[nodiscard]] Rebalance_plan propose(const Shard_plan& plan,
                                         std::vector<Shard_load> loads) const;

private:
    Rebalance_policy policy_;
};

} // namespace ga::shard

#endif // GA_SHARD_REBALANCER_H
