// Epoch-versioned shard topology: the elastic half of the fabric's shard
// layer.
//
// A Shard_map is an immutable partition snapshot; a Shard_plan wraps one
// snapshot together with the epoch counter that versions it and the
// Migration_set of agent moves that produced it from its predecessor. The
// fabric never mutates a map in place — a Rebalance_plan (agent migrations,
// shard splits, shard merges) is *applied* to the current Shard_plan,
// yielding the epoch+1 snapshot, and the fabric swaps replica groups only at
// a play-window edge. This mirrors the group split/merge dynamic of
// Kutten–Lavi–Trehan's composition games: authority groups compose and
// decompose while the agreement semantics inside each group stay those of
// the paper's single game authority.
//
// Determinism: apply() is a pure function of (plan, snapshot), so a whole
// elastic run remains a pure function of (seed, initial map, rebalance
// policy, config) — the fabric's bit-identical 1-vs-N-thread contract
// extends across epochs.
#ifndef GA_SHARD_SHARD_PLAN_H
#define GA_SHARD_SHARD_PLAN_H

#include "shard/shard_map.h"

namespace ga::shard {

/// One agent's move between shards at an epoch edge. `from` is the shard
/// that owned the agent in the *predecessor* snapshot's numbering (a merge
/// source, for instance, exists only there); `to` is the agent's shard in
/// the *successor* snapshot's numbering (for splits, the freshly created
/// shard; under a merge relabel, the post-relabel id).
struct Migration {
    common::Agent_id agent = -1;
    int from = -1;
    int to = -1;

    friend bool operator==(const Migration&, const Migration&) = default;
};

/// Every agent move one epoch edge performs, in deterministic order
/// (explicit migrations, then split movers, then merge movers).
using Migration_set = std::vector<Migration>;

/// Split: `movers` leave `shard` for a brand-new shard appended at the next
/// free id. Both halves must end up with at least the fabric's minimum
/// replica-group size.
struct Shard_split {
    int shard = -1;
    std::vector<common::Agent_id> movers;
};

/// Merge: every member of `from` joins `into`, and `from`'s dense id is
/// recycled by relabeling the highest-numbered shard onto it (that shard's
/// replica group is carried, not rebuilt — only its routing id changes).
struct Shard_merge {
    int from = -1;
    int into = -1;
};

/// What a Rebalancer emits: any mix of migrations, splits, and merges, with
/// the constraint that no shard participates in more than one split/merge
/// and split/merge shards exchange no migrating agents in the same plan.
struct Rebalance_plan {
    Migration_set migrations;
    std::vector<Shard_split> splits;
    std::vector<Shard_merge> merges;

    [[nodiscard]] bool empty() const
    {
        return migrations.empty() && splits.empty() && merges.empty();
    }
};

/// An immutable, epoch-stamped shard-topology snapshot.
class Shard_plan {
public:
    /// Epoch 0: the fabric's initial partition, no pending moves.
    explicit Shard_plan(Shard_map initial);

    [[nodiscard]] int epoch() const { return epoch_; }
    [[nodiscard]] const Shard_map& map() const { return map_; }

    /// The agent moves that produced this snapshot from its predecessor
    /// (empty at epoch 0).
    [[nodiscard]] const Migration_set& pending() const { return pending_; }

    /// Validated successor snapshot: applies `plan` and stamps epoch+1.
    /// Every resulting shard must keep at least `min_members` agents (the
    /// fabric passes its replica-group floor 3f+1). Throws Contract_error on
    /// any inconsistency — unknown agents, from-shard mismatches, splits
    /// that empty a side, overlapping operations, or undersized results.
    [[nodiscard]] Shard_plan apply(const Rebalance_plan& plan, int min_members) const;

private:
    Shard_plan(int epoch, Shard_map map, Migration_set pending);

    int epoch_ = 0;
    Shard_map map_;
    Migration_set pending_;
};

/// Topology diff driving the window-edge swap: result[s] is the shard of
/// `prev` whose member list is identical to shard s of `next` (its live
/// replica group can be adopted unchanged, even under a merge relabel), or
/// -1 when shard s must be rebuilt from scratch. Shards of `prev` that
/// appear nowhere in the result are retired.
[[nodiscard]] std::vector<int> carried_shards(const Shard_map& prev, const Shard_map& next);

} // namespace ga::shard

#endif // GA_SHARD_SHARD_PLAN_H
