#include "shard/shard_map.h"

#include <algorithm>
#include <utility>

#include "common/ensure.h"
#include "common/rng.h"

namespace ga::shard {

namespace {

/// Monotone block split: near-equal contiguous ranges, every shard hit.
int block_of(std::int64_t position, int n_agents, int n_shards)
{
    return static_cast<int>(position * n_shards / n_agents);
}

} // namespace

Assignment_policy assign_contiguous()
{
    return [](int n_agents, int n_shards) {
        std::vector<int> shard_of(static_cast<std::size_t>(n_agents));
        for (int g = 0; g < n_agents; ++g) {
            shard_of[static_cast<std::size_t>(g)] = block_of(g, n_agents, n_shards);
        }
        return shard_of;
    };
}

Assignment_policy assign_round_robin()
{
    return [](int n_agents, int n_shards) {
        std::vector<int> shard_of(static_cast<std::size_t>(n_agents));
        for (int g = 0; g < n_agents; ++g) {
            shard_of[static_cast<std::size_t>(g)] = g % n_shards;
        }
        return shard_of;
    };
}

Assignment_policy assign_hashed(std::uint64_t salt)
{
    return [salt](int n_agents, int n_shards) {
        // Hash-permute the ids, then block-split the permutation: balanced
        // (sizes within one) and non-empty at every agent/shard ratio, unlike
        // independent per-agent hashing which strands shards empty with high
        // probability once n_shards is a noticeable fraction of n_agents.
        std::vector<std::pair<std::uint64_t, int>> keyed;
        keyed.reserve(static_cast<std::size_t>(n_agents));
        for (int g = 0; g < n_agents; ++g) {
            common::Split_mix64 mixer{salt ^ (static_cast<std::uint64_t>(g) + 1)};
            keyed.emplace_back(mixer.next(), g);
        }
        std::sort(keyed.begin(), keyed.end());
        std::vector<int> shard_of(static_cast<std::size_t>(n_agents));
        for (int position = 0; position < n_agents; ++position) {
            shard_of[static_cast<std::size_t>(keyed[static_cast<std::size_t>(position)].second)] =
                block_of(position, n_agents, n_shards);
        }
        return shard_of;
    };
}

Shard_map::Shard_map(int n_agents, int n_shards, const Assignment_policy& policy)
{
    common::ensure(n_agents > 0, "Shard_map: at least one agent");
    common::ensure(n_shards > 0 && n_shards <= n_agents,
                   "Shard_map: shard count must be in [1, n_agents]");
    common::ensure(policy != nullptr, "Shard_map: null assignment policy");
    const std::vector<int> shard_of = policy(n_agents, n_shards);
    common::ensure(static_cast<int>(shard_of.size()) == n_agents,
                   "Shard_map: policy must assign every agent");
    build_from(shard_of, n_shards);
}

Shard_map::Shard_map(const std::vector<int>& shard_of_agent)
{
    common::ensure(!shard_of_agent.empty(), "Shard_map: at least one agent");
    const int n_shards = 1 + *std::max_element(shard_of_agent.begin(), shard_of_agent.end());
    build_from(shard_of_agent, n_shards);
}

void Shard_map::build_from(const std::vector<int>& shard_of_agent, int n_shards)
{
    shard_of_ = shard_of_agent;
    local_of_.assign(shard_of_.size(), -1);
    members_.assign(static_cast<std::size_t>(n_shards), {});
    for (common::Agent_id g = 0; g < static_cast<int>(shard_of_.size()); ++g) {
        const int s = shard_of_[static_cast<std::size_t>(g)];
        common::ensure(s >= 0 && s < n_shards, "Shard_map: shard id out of range");
        auto& group = members_[static_cast<std::size_t>(s)];
        local_of_[static_cast<std::size_t>(g)] = static_cast<common::Agent_id>(group.size());
        group.push_back(g);
    }
    for (const auto& group : members_) {
        common::ensure(!group.empty(), "Shard_map: every shard needs at least one agent");
    }
}

int Shard_map::shard_of(common::Agent_id global) const
{
    common::ensure(global >= 0 && global < n_agents(), "Shard_map::shard_of: id out of range");
    return shard_of_[static_cast<std::size_t>(global)];
}

common::Agent_id Shard_map::local_of(common::Agent_id global) const
{
    common::ensure(global >= 0 && global < n_agents(), "Shard_map::local_of: id out of range");
    return local_of_[static_cast<std::size_t>(global)];
}

common::Agent_id Shard_map::global_of(int shard, common::Agent_id local) const
{
    const auto& group = members(shard);
    common::ensure(local >= 0 && local < static_cast<int>(group.size()),
                   "Shard_map::global_of: local id out of range");
    return group[static_cast<std::size_t>(local)];
}

const std::vector<common::Agent_id>& Shard_map::members(int shard) const
{
    if (shard < 0 || shard >= n_shards()) {
        throw common::Contract_error{"Shard_map::members: shard " + std::to_string(shard) +
                                     " out of range [0, " + std::to_string(n_shards()) + ")"};
    }
    return members_[static_cast<std::size_t>(shard)];
}

std::vector<int> Shard_map::shard_sizes() const
{
    std::vector<int> sizes;
    sizes.reserve(members_.size());
    for (const auto& group : members_) sizes.push_back(static_cast<int>(group.size()));
    return sizes;
}

} // namespace ga::shard
