#include "game/learning.h"

#include <limits>

#include "game/mixed.h"

namespace ga::game {

namespace {

Mixed_profile normalized_counts(const Strategic_game& game,
                                const std::vector<std::vector<double>>& counts)
{
    Mixed_profile empirical;
    empirical.reserve(counts.size());
    for (common::Agent_id i = 0; i < game.n_agents(); ++i) {
        const auto& agent_counts = counts[static_cast<std::size_t>(i)];
        double total = 0.0;
        for (const double c : agent_counts) total += c;
        Mixed_strategy strategy(agent_counts.size(), 0.0);
        if (total > 0.0) {
            for (std::size_t a = 0; a < agent_counts.size(); ++a)
                strategy[a] = agent_counts[a] / total;
        } else {
            strategy[0] = 1.0;
        }
        empirical.push_back(std::move(strategy));
    }
    return empirical;
}

} // namespace

Learning_result fictitious_play(const Strategic_game& game, int iterations)
{
    common::ensure(iterations >= 1, "fictitious_play: at least one iteration");
    const int n = game.n_agents();
    std::vector<std::vector<double>> counts(static_cast<std::size_t>(n));
    for (common::Agent_id i = 0; i < n; ++i)
        counts[static_cast<std::size_t>(i)].assign(static_cast<std::size_t>(game.n_actions(i)),
                                                   0.0);

    Pure_profile previous(static_cast<std::size_t>(n), 0);
    for (common::Agent_id i = 0; i < n; ++i)
        counts[static_cast<std::size_t>(i)][0] += 1.0; // seed round

    for (int t = 1; t < iterations; ++t) {
        // Everyone best-responds simultaneously to the empirical mixture.
        const Mixed_profile beliefs = normalized_counts(game, counts);
        Pure_profile play(static_cast<std::size_t>(n), 0);
        for (common::Agent_id i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            int best_action = 0;
            for (int a = 0; a < game.n_actions(i); ++a) {
                const double cost = expected_cost_of_action(game, i, a, beliefs);
                if (cost < best - 1e-12) {
                    best = cost;
                    best_action = a;
                }
            }
            play[static_cast<std::size_t>(i)] = best_action;
        }
        for (common::Agent_id i = 0; i < n; ++i)
            counts[static_cast<std::size_t>(i)]
                  [static_cast<std::size_t>(play[static_cast<std::size_t>(i)])] += 1.0;
        previous = play;
    }
    (void)previous;
    return Learning_result{normalized_counts(game, counts), iterations};
}

Learning_result regret_matching(const Strategic_game& game, int iterations, common::Rng& rng)
{
    common::ensure(iterations >= 1, "regret_matching: at least one iteration");
    const int n = game.n_agents();
    std::vector<std::vector<double>> regrets(static_cast<std::size_t>(n));
    std::vector<std::vector<double>> counts(static_cast<std::size_t>(n));
    for (common::Agent_id i = 0; i < n; ++i) {
        regrets[static_cast<std::size_t>(i)].assign(static_cast<std::size_t>(game.n_actions(i)),
                                                    0.0);
        counts[static_cast<std::size_t>(i)].assign(static_cast<std::size_t>(game.n_actions(i)),
                                                   0.0);
    }

    for (int t = 0; t < iterations; ++t) {
        // Sample a profile from the positive-regret distributions.
        Pure_profile play(static_cast<std::size_t>(n), 0);
        for (common::Agent_id i = 0; i < n; ++i) {
            const auto& regret = regrets[static_cast<std::size_t>(i)];
            std::vector<double> weights(regret.size(), 0.0);
            double total = 0.0;
            for (std::size_t a = 0; a < regret.size(); ++a) {
                weights[a] = regret[a] > 0.0 ? regret[a] : 0.0;
                total += weights[a];
            }
            if (total <= 0.0) {
                play[static_cast<std::size_t>(i)] = static_cast<int>(
                    rng.below(static_cast<std::uint64_t>(game.n_actions(i))));
            } else {
                play[static_cast<std::size_t>(i)] = static_cast<int>(rng.weighted(weights));
            }
        }

        // Update regrets: how much cheaper would each alternative have been?
        for (common::Agent_id i = 0; i < n; ++i) {
            const double paid = game.cost(i, play);
            Pure_profile probe = play;
            for (int a = 0; a < game.n_actions(i); ++a) {
                probe[static_cast<std::size_t>(i)] = a;
                regrets[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)] +=
                    paid - game.cost(i, probe);
            }
            counts[static_cast<std::size_t>(i)]
                  [static_cast<std::size_t>(play[static_cast<std::size_t>(i)])] += 1.0;
        }
    }
    return Learning_result{normalized_counts(game, counts), iterations};
}

} // namespace ga::game
