#include "game/resource_allocation.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace ga::game {

Rra_stage_game::Rra_stage_game(std::vector<std::int64_t> loads, int agents)
    : loads_{std::move(loads)}, agents_{agents}
{
    common::ensure(!loads_.empty(), "Rra_stage_game: at least one bin required");
    common::ensure(agents_ >= 1, "Rra_stage_game: at least one agent required");
}

double Rra_stage_game::cost(common::Agent_id i, const Pure_profile& profile) const
{
    validate_profile(profile);
    const int chosen = profile[static_cast<std::size_t>(i)];
    int demand = 0;
    for (const int a : profile) {
        if (a == chosen) ++demand;
    }
    return static_cast<double>(loads_[static_cast<std::size_t>(chosen)] + demand);
}

Rra_process::Rra_process(int agents, int bins, Rra_rule rule, common::Rng rng)
    : agents_{agents}, rule_{rule}, rng_{rng}, loads_(static_cast<std::size_t>(bins), 0)
{
    common::ensure(agents_ >= 1, "Rra_process: at least one agent required");
    common::ensure(bins >= 2, "Rra_process: the paper's model has b > 1");
}

std::int64_t Rra_process::max_load() const
{
    return *std::max_element(loads_.begin(), loads_.end());
}

std::int64_t Rra_process::min_load() const
{
    return *std::min_element(loads_.begin(), loads_.end());
}

double Rra_process::anarchy_ratio() const
{
    common::ensure(rounds_ > 0, "anarchy_ratio: no rounds played yet");
    const std::int64_t nk = static_cast<std::int64_t>(agents_) * rounds_;
    const double opt = static_cast<double>(nk / bins() + 1); // floor(nk/b) + 1
    return static_cast<double>(max_load()) / opt;
}

double Rra_process::theorem5_bound() const
{
    common::ensure(rounds_ > 0, "theorem5_bound: no rounds played yet");
    return 1.0 + 2.0 * static_cast<double>(bins()) / static_cast<double>(rounds_);
}

Mixed_strategy Rra_process::symmetric_equilibrium() const
{
    // Water-filling: support the k least-loaded bins; on the support the
    // expected perceived load lambda = l_a + 1 + (n-1) x_a is constant and
    // unsupported bins satisfy l_b + 1 >= lambda.
    const int b = bins();
    std::vector<int> order(static_cast<std::size_t>(b));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        if (loads_[static_cast<std::size_t>(x)] != loads_[static_cast<std::size_t>(y)])
            return loads_[static_cast<std::size_t>(x)] < loads_[static_cast<std::size_t>(y)];
        return x < y;
    });

    Mixed_strategy strategy(static_cast<std::size_t>(b), 0.0);
    const double spread_budget = static_cast<double>(agents_ - 1);
    for (int k = b; k >= 1; --k) {
        std::int64_t load_sum = 0;
        for (int j = 0; j < k; ++j) load_sum += loads_[static_cast<std::size_t>(order[static_cast<std::size_t>(j)])];
        const double lambda =
            (spread_budget + static_cast<double>(k) + static_cast<double>(load_sum)) /
            static_cast<double>(k);

        // Feasibility: every supported bin gets x_a >= 0, every unsupported
        // bin already exceeds the common level.
        const double heaviest_supported =
            static_cast<double>(loads_[static_cast<std::size_t>(order[static_cast<std::size_t>(k - 1)])]);
        if (lambda < heaviest_supported + 1.0 - 1e-12) continue;
        if (k < b) {
            const double lightest_unsupported =
                static_cast<double>(loads_[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])]);
            if (lightest_unsupported + 1.0 < lambda - 1e-12) continue;
        }

        if (agents_ == 1) {
            // Degenerate: a single agent best-responds to the least-loaded bin.
            strategy[static_cast<std::size_t>(order[0])] = 1.0;
            return strategy;
        }
        for (int j = 0; j < k; ++j) {
            const int bin = order[static_cast<std::size_t>(j)];
            strategy[static_cast<std::size_t>(bin)] =
                (lambda - 1.0 - static_cast<double>(loads_[static_cast<std::size_t>(bin)])) /
                spread_budget;
        }
        return strategy;
    }
    common::ensure(false, "symmetric_equilibrium: water-filling found no support");
    return strategy;
}

std::vector<int> Rra_process::greedy_assignment() const
{
    // Sequential best response; ties resolved toward the lowest index.
    const int b = bins();
    std::vector<int> counts(static_cast<std::size_t>(b), 0);
    for (int agent = 0; agent < agents_; ++agent) {
        int best_bin = 0;
        std::int64_t best_total = std::numeric_limits<std::int64_t>::max();
        for (int a = 0; a < b; ++a) {
            const std::int64_t total =
                loads_[static_cast<std::size_t>(a)] + counts[static_cast<std::size_t>(a)] + 1;
            if (total < best_total) {
                best_total = total;
                best_bin = a;
            }
        }
        ++counts[static_cast<std::size_t>(best_bin)];
    }
    return counts;
}

std::vector<int> Rra_process::adversarial_assignment() const
{
    // A pure profile with bin counts c is a stage NE iff every used bin's
    // total t_a = l_a + c_a satisfies t_a <= t_b + 1 for *every* bin b.
    // The worst NE therefore raises one bin to the largest T such that all
    // bins can be topped up to at least T-1 within the n demands.
    const int b = bins();
    std::vector<int> counts(static_cast<std::size_t>(b), 0);

    std::int64_t best_t = -1;
    int best_bin = -1;
    for (int target = 0; target < b; ++target) {
        // Binary search the largest T for raising bin `target` to T.
        std::int64_t lo = loads_[static_cast<std::size_t>(target)] + 1;
        std::int64_t hi = loads_[static_cast<std::size_t>(target)] + agents_;
        while (lo <= hi) {
            const std::int64_t t = lo + (hi - lo) / 2;
            std::int64_t needed = t - loads_[static_cast<std::size_t>(target)];
            for (int a = 0; a < b; ++a) {
                if (a == target) continue;
                needed += std::max<std::int64_t>(0, t - 1 - loads_[static_cast<std::size_t>(a)]);
            }
            if (needed <= agents_) {
                if (t > best_t) {
                    best_t = t;
                    best_bin = target;
                }
                lo = t + 1;
            } else {
                hi = t - 1;
            }
        }
    }
    common::ensure(best_bin >= 0, "adversarial_assignment: no feasible NE found");

    // Meet the minima...
    int placed = 0;
    counts[static_cast<std::size_t>(best_bin)] =
        static_cast<int>(best_t - loads_[static_cast<std::size_t>(best_bin)]);
    placed += counts[static_cast<std::size_t>(best_bin)];
    for (int a = 0; a < b; ++a) {
        if (a == best_bin) continue;
        const int need =
            static_cast<int>(std::max<std::int64_t>(0, best_t - 1 - loads_[static_cast<std::size_t>(a)]));
        counts[static_cast<std::size_t>(a)] = need;
        placed += need;
    }
    // ...then drop the leftover demands on currently-minimal totals, which
    // preserves the NE property.
    while (placed < agents_) {
        int arg_min = 0;
        std::int64_t min_total = std::numeric_limits<std::int64_t>::max();
        for (int a = 0; a < b; ++a) {
            const std::int64_t total =
                loads_[static_cast<std::size_t>(a)] + counts[static_cast<std::size_t>(a)];
            if (total < min_total) {
                min_total = total;
                arg_min = a;
            }
        }
        ++counts[static_cast<std::size_t>(arg_min)];
        ++placed;
    }
    return counts;
}

void Rra_process::play_round()
{
    std::vector<int> counts;
    switch (rule_) {
    case Rra_rule::symmetric_mixed: {
        const Mixed_strategy x = symmetric_equilibrium();
        counts.assign(static_cast<std::size_t>(bins()), 0);
        for (int agent = 0; agent < agents_; ++agent) {
            const std::size_t bin = rng_.weighted(x);
            ++counts[bin];
        }
        break;
    }
    case Rra_rule::greedy_pure:
        counts = greedy_assignment();
        break;
    case Rra_rule::adversarial_pure:
        counts = adversarial_assignment();
        break;
    }

    for (std::size_t a = 0; a < loads_.size(); ++a) loads_[a] += counts[a];
    ++rounds_;
}

} // namespace ga::game
