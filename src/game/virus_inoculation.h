// The virus-inoculation game of Moscibroda, Schmid and Wattenhofer (PODC'06),
// reference [21] of the paper — the game that defines the price of malice the
// game authority is shown to reduce (§1.2, §5.4).
//
// n nodes on a social graph each choose to inoculate (action 1, fixed cost C)
// or stay insecure (action 0). A virus starts at one uniformly random node and
// infects everything reachable through insecure nodes, costing each infected
// node L. An insecure node in an insecure component of size k therefore pays
// L * k / n in expectation; social cost is the sum over all nodes.
#ifndef GA_GAME_VIRUS_INOCULATION_H
#define GA_GAME_VIRUS_INOCULATION_H

#include "game/strategic_game.h"
#include "sim/graph.h"

namespace ga::game {

inline constexpr int vi_insecure = 0;
inline constexpr int vi_inoculate = 1;

class Virus_inoculation_game final : public Strategic_game {
public:
    /// `graph` is the social graph; C and L are the paper's [21] parameters
    /// (inoculation cost and infection loss), with C < L required for the
    /// game to be non-trivial.
    Virus_inoculation_game(const sim::Graph* graph, double inoculation_cost, double loss);

    [[nodiscard]] int n_agents() const override { return graph_->size(); }
    [[nodiscard]] int n_actions(common::Agent_id) const override { return 2; }
    [[nodiscard]] double cost(common::Agent_id i, const Pure_profile& profile) const override;

    [[nodiscard]] double inoculation_cost() const { return c_; }
    [[nodiscard]] double loss() const { return l_; }
    [[nodiscard]] const sim::Graph& graph() const { return *graph_; }

    /// Size of node i's insecure component under `profile` (0 if inoculated).
    [[nodiscard]] int insecure_component_size(common::Agent_id i, const Pure_profile& profile) const;

    /// A pure Nash equilibrium reached by round-robin best-response dynamics
    /// from the all-insecure profile ([21] proves pure NEs exist; the
    /// dynamics converge because every improving switch strictly decreases a
    /// bounded potential). `sweep_cap` guards against non-termination bugs.
    [[nodiscard]] Pure_profile best_response_equilibrium(int sweep_cap = 1000) const;

private:
    const sim::Graph* graph_;
    double c_;
    double l_;
};

} // namespace ga::game

#endif // GA_GAME_VIRUS_INOCULATION_H
