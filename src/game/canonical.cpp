#include "game/canonical.h"

namespace ga::game {

Matrix_game matching_pennies()
{
    // Payoffs as usually tabulated; rows = A in {Heads, Tails}.
    return Matrix_game::from_payoffs_2p("matching-pennies",
                                        {{+1, -1}, {-1, +1}},  // A
                                        {{-1, +1}, {+1, -1}}); // B
}

Matrix_game manipulated_matching_pennies()
{
    // Fig. 1 of the paper: columns = B in {Heads, Tails, Manipulate}.
    return Matrix_game::from_payoffs_2p("matching-pennies-fig1",
                                        {{+1, -1, +1}, {-1, +1, -9}},  // A
                                        {{-1, +1, -1}, {+1, -1, +9}}); // B
}

Matrix_game prisoners_dilemma()
{
    return Matrix_game{"prisoners-dilemma",
                       {2, 2},
                       {{1, 3, 0, 2},   // agent 0 cost: (C,C) (C,D) (D,C) (D,D)
                        {1, 0, 3, 2}}}; // agent 1 cost
}

Matrix_game coordination_game()
{
    return Matrix_game{"coordination",
                       {2, 2},
                       {{1, 5, 5, 3},   // agent 0 cost
                        {1, 5, 5, 3}}}; // agent 1 cost
}

} // namespace ga::game
