// Learning dynamics for repeated games.
//
// The legislative service needs an equilibrium profile to elect (§3.1); these
// classic uncoupled dynamics are how a society of selfish agents can discover
// one before voting on it (and they connect to the authors' follow-up work on
// strategies for repeated games, [10] in the paper):
//   * fictitious play — each agent best-responds to the empirical mixture of
//     the others' past actions; the empirical frequencies converge to a Nash
//     equilibrium in zero-sum and dominance-solvable games;
//   * regret matching (Hart & Mas-Colell) — play actions with probability
//     proportional to positive cumulative regret; the empirical joint
//     distribution converges to the set of correlated equilibria.
#ifndef GA_GAME_LEARNING_H
#define GA_GAME_LEARNING_H

#include "common/rng.h"
#include "game/strategic_game.h"

namespace ga::game {

struct Learning_result {
    /// Per-agent empirical action frequencies over all iterations.
    Mixed_profile empirical;
    int iterations = 0;
};

/// Simultaneous fictitious play for `iterations` rounds from the all-zeros
/// profile. Deterministic (best-response ties break to the lowest index).
Learning_result fictitious_play(const Strategic_game& game, int iterations);

/// Regret matching for `iterations` rounds; stochastic via `rng`.
Learning_result regret_matching(const Strategic_game& game, int iterations, common::Rng& rng);

} // namespace ga::game

#endif // GA_GAME_LEARNING_H
