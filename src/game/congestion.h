// Singleton linear congestion games (machine scheduling on identical-speed
// links with affine latencies). A Rosenthal potential game: pure Nash
// equilibria always exist and better-response dynamics converge — the class
// of games whose predictable outcome §6 argues a designer should elect.
#ifndef GA_GAME_CONGESTION_H
#define GA_GAME_CONGESTION_H

#include "common/rng.h"
#include "game/strategic_game.h"

namespace ga::game {

/// Latency of a resource: latency(x) = slope * x + offset for load x.
struct Affine_latency {
    double slope = 1.0;
    double offset = 0.0;
};

class Singleton_congestion_game final : public Strategic_game {
public:
    Singleton_congestion_game(int agents, std::vector<Affine_latency> resources);

    [[nodiscard]] int n_agents() const override { return agents_; }
    [[nodiscard]] int n_actions(common::Agent_id) const override
    {
        return static_cast<int>(resources_.size());
    }
    /// Cost of agent i: latency of its chosen resource under the profile load.
    [[nodiscard]] double cost(common::Agent_id i, const Pure_profile& profile) const override;

    /// Rosenthal potential: sum over resources of latency(1)+...+latency(load).
    /// Every improving unilateral deviation strictly decreases it.
    [[nodiscard]] double rosenthal_potential(const Pure_profile& profile) const;

    /// A pure NE via better-response dynamics from a random start.
    [[nodiscard]] Pure_profile better_response_equilibrium(common::Rng& rng,
                                                           int step_cap = 100000) const;

private:
    int agents_;
    std::vector<Affine_latency> resources_;
};

} // namespace ga::game

#endif // GA_GAME_CONGESTION_H
