// Explicit (tensor) strategic-form games for small agent counts; the concrete
// representation behind every canonical example game.
#ifndef GA_GAME_MATRIX_GAME_H
#define GA_GAME_MATRIX_GAME_H

#include <string>
#include <vector>

#include "game/strategic_game.h"

namespace ga::game {

class Matrix_game final : public Strategic_game {
public:
    /// `action_counts[i]` = |Π_i|; `costs[i]` = flat tensor of agent i's cost,
    /// indexed by mixed-radix profile (agent 0 is the most significant digit).
    Matrix_game(std::string name, std::vector<int> action_counts,
                std::vector<std::vector<double>> costs);

    /// Two-player builder from *payoff* matrices (as printed in Fig. 1):
    /// payoff_a[i][j] / payoff_b[i][j] for row player action i, column player
    /// action j. Costs are the negated payoffs.
    static Matrix_game from_payoffs_2p(std::string name,
                                       const std::vector<std::vector<double>>& payoff_a,
                                       const std::vector<std::vector<double>>& payoff_b);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] int n_agents() const override { return static_cast<int>(action_counts_.size()); }
    [[nodiscard]] int n_actions(common::Agent_id i) const override;
    [[nodiscard]] double cost(common::Agent_id i, const Pure_profile& profile) const override;

    /// Flat index of a profile in the cost tensors.
    [[nodiscard]] std::size_t flat_index(const Pure_profile& profile) const;

private:
    std::string name_;
    std::vector<int> action_counts_;
    std::vector<std::vector<double>> costs_;
};

} // namespace ga::game

#endif // GA_GAME_MATRIX_GAME_H
