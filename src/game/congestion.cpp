#include "game/congestion.h"

namespace ga::game {

Singleton_congestion_game::Singleton_congestion_game(int agents,
                                                     std::vector<Affine_latency> resources)
    : agents_{agents}, resources_{std::move(resources)}
{
    common::ensure(agents_ >= 1, "Singleton_congestion_game: at least one agent");
    common::ensure(!resources_.empty(), "Singleton_congestion_game: at least one resource");
    for (const auto& r : resources_)
        common::ensure(r.slope >= 0.0 && r.offset >= 0.0,
                       "Singleton_congestion_game: non-negative latencies required");
}

double Singleton_congestion_game::cost(common::Agent_id i, const Pure_profile& profile) const
{
    validate_profile(profile);
    const int chosen = profile[static_cast<std::size_t>(i)];
    int load = 0;
    for (const int a : profile) {
        if (a == chosen) ++load;
    }
    const auto& r = resources_[static_cast<std::size_t>(chosen)];
    return r.slope * static_cast<double>(load) + r.offset;
}

double Singleton_congestion_game::rosenthal_potential(const Pure_profile& profile) const
{
    validate_profile(profile);
    std::vector<int> load(resources_.size(), 0);
    for (const int a : profile) ++load[static_cast<std::size_t>(a)];
    double potential = 0.0;
    for (std::size_t e = 0; e < resources_.size(); ++e) {
        for (int x = 1; x <= load[e]; ++x)
            potential += resources_[e].slope * static_cast<double>(x) + resources_[e].offset;
    }
    return potential;
}

Pure_profile Singleton_congestion_game::better_response_equilibrium(common::Rng& rng,
                                                                    int step_cap) const
{
    Pure_profile profile(static_cast<std::size_t>(agents_), 0);
    for (auto& a : profile)
        a = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_actions(0))));

    for (int step = 0; step < step_cap; ++step) {
        bool improved = false;
        for (common::Agent_id i = 0; i < agents_; ++i) {
            const double current = cost(i, profile);
            Pure_profile probe = profile;
            for (int a = 0; a < n_actions(i); ++a) {
                probe[static_cast<std::size_t>(i)] = a;
                if (cost(i, probe) < current - 1e-12) {
                    profile[static_cast<std::size_t>(i)] = a;
                    improved = true;
                    break;
                }
            }
        }
        if (!improved) return profile;
    }
    common::ensure(false, "better_response_equilibrium: dynamics did not converge");
    return profile;
}

} // namespace ga::game
