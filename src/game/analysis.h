// Pure-strategy analysis: best responses, pure Nash equilibria, social cost,
// and the anarchy/stability cost criteria the paper builds on (§2, §6).
#ifndef GA_GAME_ANALYSIS_H
#define GA_GAME_ANALYSIS_H

#include <functional>
#include <optional>

#include "game/strategic_game.h"

namespace ga::game {

/// Invoke `visit` on every pure profile of the game (mixed-radix counting).
void for_each_profile(const Strategic_game& game,
                      const std::function<void(const Pure_profile&)>& visit);

/// The set of cost-minimizing actions of agent i against profile `pi`
/// (pi's own i-th entry is ignored); within `eps` of the minimum.
std::vector<int> best_response_set(const Strategic_game& game, common::Agent_id i,
                                   const Pure_profile& pi, double eps = 1e-9);

/// Canonical best response: the lowest-index element of best_response_set —
/// the deterministic tie-break honest agents and auditors share (§3.2's foul
/// rule compares against the *set*, so ties never incriminate).
int best_response(const Strategic_game& game, common::Agent_id i, const Pure_profile& pi);

/// True iff agent i's action in `pi` is within `eps` of its best response.
bool is_best_response(const Strategic_game& game, common::Agent_id i, const Pure_profile& pi,
                      double eps = 1e-9);

/// Pure Nash equilibrium test (§2).
bool is_pure_nash(const Strategic_game& game, const Pure_profile& pi, double eps = 1e-9);

/// All PNEs by exhaustive enumeration (small games only).
std::vector<Pure_profile> pure_nash_equilibria(const Strategic_game& game, double eps = 1e-9);

/// Social cost: sum of individual costs of the agents selected by `honest`
/// (all agents when the mask is empty) — the paper's §2 definition.
double social_cost(const Strategic_game& game, const Pure_profile& pi,
                   const std::vector<bool>& honest = {});

/// The profile minimizing social cost (the centralistic optimum).
struct Social_optimum {
    Pure_profile profile;
    double cost = 0.0;
};
Social_optimum social_optimum(const Strategic_game& game);

/// Price of anarchy: worst-PNE social cost / optimum ([18,17]); nullopt when
/// the game has no PNE. Degenerate optima (<= 0) yield nullopt as well, since
/// the ratio criterion is meaningless there.
std::optional<double> price_of_anarchy(const Strategic_game& game);

/// Price of stability: best-PNE social cost / optimum ([3]).
std::optional<double> price_of_stability(const Strategic_game& game);

} // namespace ga::game

#endif // GA_GAME_ANALYSIS_H
