#include "game/matrix_game.h"

namespace ga::game {

Matrix_game::Matrix_game(std::string name, std::vector<int> action_counts,
                         std::vector<std::vector<double>> costs)
    : name_{std::move(name)}, action_counts_{std::move(action_counts)}, costs_{std::move(costs)}
{
    common::ensure(!action_counts_.empty(), "Matrix_game: at least one agent required");
    common::ensure(costs_.size() == action_counts_.size(),
                   "Matrix_game: one cost tensor per agent required");
    std::size_t profiles = 1;
    for (const int actions : action_counts_) {
        common::ensure(actions >= 1, "Matrix_game: every agent needs an action");
        profiles *= static_cast<std::size_t>(actions);
    }
    for (const auto& tensor : costs_)
        common::ensure(tensor.size() == profiles, "Matrix_game: cost tensor size mismatch");
}

Matrix_game Matrix_game::from_payoffs_2p(std::string name,
                                         const std::vector<std::vector<double>>& payoff_a,
                                         const std::vector<std::vector<double>>& payoff_b)
{
    common::ensure(!payoff_a.empty() && !payoff_a.front().empty(),
                   "from_payoffs_2p: empty payoff matrix");
    const auto rows = payoff_a.size();
    const auto cols = payoff_a.front().size();
    common::ensure(payoff_b.size() == rows, "from_payoffs_2p: payoff shape mismatch");

    std::vector<std::vector<double>> costs(2);
    costs[0].reserve(rows * cols);
    costs[1].reserve(rows * cols);
    for (std::size_t i = 0; i < rows; ++i) {
        common::ensure(payoff_a[i].size() == cols && payoff_b[i].size() == cols,
                       "from_payoffs_2p: ragged payoff matrix");
        for (std::size_t j = 0; j < cols; ++j) {
            costs[0].push_back(-payoff_a[i][j]);
            costs[1].push_back(-payoff_b[i][j]);
        }
    }
    return Matrix_game{std::move(name),
                       {static_cast<int>(rows), static_cast<int>(cols)},
                       std::move(costs)};
}

int Matrix_game::n_actions(common::Agent_id i) const
{
    common::ensure(i >= 0 && i < n_agents(), "n_actions: agent out of range");
    return action_counts_[static_cast<std::size_t>(i)];
}

std::size_t Matrix_game::flat_index(const Pure_profile& profile) const
{
    validate_profile(profile);
    std::size_t index = 0;
    for (std::size_t i = 0; i < profile.size(); ++i) {
        index = index * static_cast<std::size_t>(action_counts_[i]) +
                static_cast<std::size_t>(profile[i]);
    }
    return index;
}

double Matrix_game::cost(common::Agent_id i, const Pure_profile& profile) const
{
    common::ensure(i >= 0 && i < n_agents(), "cost: agent out of range");
    return costs_[static_cast<std::size_t>(i)][flat_index(profile)];
}

} // namespace ga::game
