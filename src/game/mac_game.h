// Selfish medium access (slotted ALOHA), the motivating example from the
// paper's introduction: "the selfish MAC layer that does not back off"
// (Cagalj et al. [5]).
//
// n stations each pick a transmission probability from a discrete grid. In a
// slot, station i succeeds iff it transmits and nobody else does:
//   throughput_i(p) = p_i * prod_{j != i} (1 - p_j)
// and pays an energy price per transmission attempt:
//   cost_i(p) = energy * p_i - throughput_i(p).
// With cheap energy, defecting to the most aggressive probability dominates
// and the channel collapses — a tragedy of the commons whose PoA explodes.
// Under the game authority the society elects a backoff-compliant symmetric
// profile; per-slot transmission decisions are PRNG samples of the elected
// probability, so the §5.3 seed audit makes "refusing to back off" a
// detectable, punishable foul.
#ifndef GA_GAME_MAC_GAME_H
#define GA_GAME_MAC_GAME_H

#include "game/strategic_game.h"

namespace ga::game {

class Mac_game final : public Strategic_game {
public:
    /// `probability_grid` lists the selectable transmission probabilities in
    /// (0, 1], increasing; `energy_cost` is the per-attempt price.
    Mac_game(int stations, std::vector<double> probability_grid, double energy_cost);

    [[nodiscard]] int n_agents() const override { return stations_; }
    [[nodiscard]] int n_actions(common::Agent_id) const override
    {
        return static_cast<int>(grid_.size());
    }
    [[nodiscard]] double cost(common::Agent_id i, const Pure_profile& profile) const override;

    [[nodiscard]] const std::vector<double>& probability_grid() const { return grid_; }
    [[nodiscard]] double energy_cost() const { return energy_; }

    /// Success probability of station i in one slot under `profile`.
    [[nodiscard]] double throughput(common::Agent_id i, const Pure_profile& profile) const;

    /// Channel throughput: the probability that some station succeeds.
    [[nodiscard]] double total_throughput(const Pure_profile& profile) const;

    /// The symmetric profile (same grid index for everyone) with the lowest
    /// social cost — what a backoff-respecting society would elect.
    [[nodiscard]] Pure_profile best_symmetric_profile() const;

private:
    int stations_;
    std::vector<double> grid_;
    double energy_;
};

} // namespace ga::game

#endif // GA_GAME_MAC_GAME_H
