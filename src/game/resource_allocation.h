// The repeated resource allocation (RRA) game of §6.
//
// n agents each place one unit demand on one of b resources ("bins") every
// round; after the round all loads are public; the time to service a demand on
// resource a is a's cumulative load, so an agent's stage cost for choosing a
// is l_a(k) + (number of demands placed on a this round, including its own).
// Every play is a fresh (round-independent) Nash equilibrium of the stage
// game — the paper's "repeated Nash equilibrium".
//
// Equilibrium selectors:
//  * symmetric_mixed   — the canonical symmetric mixed NE: the water-filling
//                        distribution over the least-loaded bins (this is the
//                        equilibrium structure Lemma 6's proof reasons about);
//  * greedy_pure       — balanced pure NE via sequential best response;
//  * adversarial_pure  — the pure NE maximizing the resulting maximum load
//                        (worst case over pure equilibria, for SC(k)).
//
// Theorem 5: under game-authority supervision R(k) <= 1 + 2b/k and R -> 1;
// Lemma 6: M(k) - l_a(k) <= 2n - 1 for every bin a.
#ifndef GA_GAME_RESOURCE_ALLOCATION_H
#define GA_GAME_RESOURCE_ALLOCATION_H

#include <cstdint>

#include "common/rng.h"
#include "game/strategic_game.h"

namespace ga::game {

enum class Rra_rule {
    symmetric_mixed,
    greedy_pure,
    adversarial_pure,
};

/// The one-round stage game induced by the current loads (exposed as a
/// Strategic_game so generic analysis/tests apply to it).
class Rra_stage_game final : public Strategic_game {
public:
    Rra_stage_game(std::vector<std::int64_t> loads, int agents);

    [[nodiscard]] int n_agents() const override { return agents_; }
    [[nodiscard]] int n_actions(common::Agent_id) const override
    {
        return static_cast<int>(loads_.size());
    }
    /// Stage cost: load of the chosen bin plus every demand placed on it now.
    [[nodiscard]] double cost(common::Agent_id i, const Pure_profile& profile) const override;

    [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }

private:
    std::vector<std::int64_t> loads_;
    int agents_;
};

/// The repeated process: plays round after round under a fixed selector.
class Rra_process {
public:
    Rra_process(int agents, int bins, Rra_rule rule, common::Rng rng);

    /// Play one round: select a stage equilibrium, realize choices, add loads.
    void play_round();

    [[nodiscard]] int rounds_played() const { return rounds_; }
    [[nodiscard]] int agents() const { return agents_; }
    [[nodiscard]] int bins() const { return static_cast<int>(loads_.size()); }
    [[nodiscard]] const std::vector<std::int64_t>& loads() const { return loads_; }
    [[nodiscard]] std::int64_t max_load() const;
    [[nodiscard]] std::int64_t min_load() const;

    /// Delta(k) = M(k) - m(k); Lemma 6 bounds it by 2n-1.
    [[nodiscard]] std::int64_t spread() const { return max_load() - min_load(); }

    /// k-round anarchy ratio of this run: M(k) / OPT(k), OPT(k) = floor(nk/b)+1.
    [[nodiscard]] double anarchy_ratio() const;

    /// Theorem 5's bound for the current k: 1 + 2b/k.
    [[nodiscard]] double theorem5_bound() const;

    /// The symmetric water-filling mixed NE of the current stage game
    /// (support = least-loaded bins, probabilities equalize expected loads).
    [[nodiscard]] Mixed_strategy symmetric_equilibrium() const;

    /// The pure assignment (bin counts) the adversarial selector would choose
    /// now; exposed for the NE-property tests.
    [[nodiscard]] std::vector<int> adversarial_assignment() const;

private:
    std::vector<int> greedy_assignment() const;

    int agents_;
    Rra_rule rule_;
    common::Rng rng_;
    std::vector<std::int64_t> loads_;
    int rounds_ = 0;
};

} // namespace ga::game

#endif // GA_GAME_RESOURCE_ALLOCATION_H
