#include "game/mixed.h"

#include <cmath>
#include <limits>

#include "game/analysis.h"
#include "game/linalg.h"

namespace ga::game {

namespace {

void validate_mixed_profile(const Strategic_game& game, const Mixed_profile& sigma)
{
    common::ensure(static_cast<int>(sigma.size()) == game.n_agents(),
                   "mixed profile: wrong arity");
    for (common::Agent_id i = 0; i < game.n_agents(); ++i) {
        common::ensure(static_cast<int>(sigma[static_cast<std::size_t>(i)].size()) ==
                           game.n_actions(i),
                       "mixed profile: wrong strategy length");
        common::ensure(is_distribution(sigma[static_cast<std::size_t>(i)], 1e-6),
                       "mixed profile: strategy is not a distribution");
    }
}

} // namespace

double expected_cost(const Strategic_game& game, common::Agent_id i, const Mixed_profile& sigma)
{
    validate_mixed_profile(game, sigma);
    double total = 0.0;
    for_each_profile(game, [&](const Pure_profile& pi) {
        double probability = 1.0;
        for (common::Agent_id j = 0; j < game.n_agents(); ++j) {
            probability *= sigma[static_cast<std::size_t>(j)]
                                [static_cast<std::size_t>(pi[static_cast<std::size_t>(j)])];
            if (probability == 0.0) return;
        }
        total += probability * game.cost(i, pi);
    });
    return total;
}

double expected_cost_of_action(const Strategic_game& game, common::Agent_id i, int a,
                               const Mixed_profile& sigma)
{
    common::ensure(game.is_legitimate_action(i, a), "expected_cost_of_action: illegal action");
    Mixed_profile deviated = sigma;
    deviated[static_cast<std::size_t>(i)] = pure_as_mixed(a, game.n_actions(i));
    return expected_cost(game, i, deviated);
}

bool is_mixed_nash(const Strategic_game& game, const Mixed_profile& sigma, double eps)
{
    validate_mixed_profile(game, sigma);
    for (common::Agent_id i = 0; i < game.n_agents(); ++i) {
        double best = std::numeric_limits<double>::infinity();
        std::vector<double> action_costs(static_cast<std::size_t>(game.n_actions(i)));
        for (int a = 0; a < game.n_actions(i); ++a) {
            action_costs[static_cast<std::size_t>(a)] = expected_cost_of_action(game, i, a, sigma);
            best = std::min(best, action_costs[static_cast<std::size_t>(a)]);
        }
        for (int a = 0; a < game.n_actions(i); ++a) {
            const double p = sigma[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)];
            if (p > eps && action_costs[static_cast<std::size_t>(a)] > best + eps) return false;
        }
    }
    return true;
}

std::optional<Mixed_profile> mixed_nash_2x2(const Strategic_game& game)
{
    common::ensure(game.n_agents() == 2 && game.n_actions(0) == 2 && game.n_actions(1) == 2,
                   "mixed_nash_2x2 requires a 2x2 game");
    const auto c = [&](common::Agent_id who, int a0, int a1) {
        return game.cost(who, Pure_profile{a0, a1});
    };

    // p = P[agent 0 plays action 0] chosen to make agent 1 indifferent.
    const double denom_p = c(1, 0, 0) - c(1, 1, 0) - c(1, 0, 1) + c(1, 1, 1);
    // q = P[agent 1 plays action 0] chosen to make agent 0 indifferent.
    const double denom_q = c(0, 0, 0) - c(0, 0, 1) - c(0, 1, 0) + c(0, 1, 1);
    if (std::abs(denom_p) < 1e-12 || std::abs(denom_q) < 1e-12) return std::nullopt;

    const double p = (c(1, 1, 1) - c(1, 1, 0)) / denom_p;
    const double q = (c(0, 1, 1) - c(0, 0, 1)) / denom_q;
    if (p < 0.0 || p > 1.0 || q < 0.0 || q > 1.0) return std::nullopt;

    Mixed_profile sigma{{p, 1.0 - p}, {q, 1.0 - q}};
    if (!is_mixed_nash(game, sigma, 1e-7)) return std::nullopt;
    return sigma;
}

namespace {

/// Enumerate non-empty subsets of {0..count-1} as index vectors.
std::vector<std::vector<int>> non_empty_subsets(int count)
{
    std::vector<std::vector<int>> subsets;
    for (unsigned mask = 1; mask < (1u << count); ++mask) {
        std::vector<int> subset;
        for (int a = 0; a < count; ++a) {
            if (mask & (1u << a)) subset.push_back(a);
        }
        subsets.push_back(std::move(subset));
    }
    return subsets;
}

/// Solve for the mixed strategy of `owner` supported on `support` that makes
/// the *other* player indifferent across `other_support`.
/// Unknowns: probabilities on `support` plus the common cost level.
std::optional<Mixed_strategy> solve_indifference(const Strategic_game& game,
                                                 common::Agent_id owner,
                                                 const std::vector<int>& support,
                                                 common::Agent_id other,
                                                 const std::vector<int>& other_support,
                                                 double eps)
{
    if (support.size() != other_support.size()) return std::nullopt; // square system only
    const std::size_t k = support.size();
    // Unknowns x_0..x_{k-1} (probabilities), v (indifference cost level).
    std::vector<std::vector<double>> a(k + 1, std::vector<double>(k + 1, 0.0));
    std::vector<double> b(k + 1, 0.0);

    for (std::size_t row = 0; row < k; ++row) {
        // Expected cost of `other` playing other_support[row] equals v.
        for (std::size_t col = 0; col < k; ++col) {
            Pure_profile pi(2, 0);
            pi[static_cast<std::size_t>(owner)] = support[col];
            pi[static_cast<std::size_t>(other)] = other_support[row];
            a[row][col] = game.cost(other, pi);
        }
        a[row][k] = -1.0; // -v
        b[row] = 0.0;
    }
    for (std::size_t col = 0; col < k; ++col) a[k][col] = 1.0; // probabilities sum to 1
    b[k] = 1.0;

    const auto solution = solve_linear_system(a, b);
    if (!solution.has_value()) return std::nullopt;

    Mixed_strategy strategy(static_cast<std::size_t>(game.n_actions(owner)), 0.0);
    for (std::size_t col = 0; col < k; ++col) {
        if ((*solution)[col] < -eps) return std::nullopt;
        strategy[static_cast<std::size_t>(support[col])] = std::max(0.0, (*solution)[col]);
    }
    return strategy;
}

} // namespace

std::vector<Mixed_profile> support_enumeration_2p(const Strategic_game& game, double eps)
{
    common::ensure(game.n_agents() == 2, "support_enumeration_2p requires two players");
    std::vector<Mixed_profile> equilibria;

    const auto supports0 = non_empty_subsets(game.n_actions(0));
    const auto supports1 = non_empty_subsets(game.n_actions(1));
    for (const auto& s0 : supports0) {
        for (const auto& s1 : supports1) {
            if (s0.size() != s1.size()) continue;
            const auto sigma0 = solve_indifference(game, 0, s0, 1, s1, eps);
            if (!sigma0.has_value()) continue;
            const auto sigma1 = solve_indifference(game, 1, s1, 0, s0, eps);
            if (!sigma1.has_value()) continue;
            Mixed_profile sigma{*sigma0, *sigma1};
            if (!is_mixed_nash(game, sigma, 1e-7)) continue;

            const bool duplicate = [&] {
                for (const auto& known : equilibria) {
                    double distance = 0.0;
                    for (int i = 0; i < 2; ++i)
                        for (std::size_t a = 0; a < known[static_cast<std::size_t>(i)].size(); ++a)
                            distance += std::abs(known[static_cast<std::size_t>(i)][a] -
                                                 sigma[static_cast<std::size_t>(i)][a]);
                    if (distance < 1e-6) return true;
                }
                return false;
            }();
            if (!duplicate) equilibria.push_back(std::move(sigma));
        }
    }
    return equilibria;
}

} // namespace ga::game
