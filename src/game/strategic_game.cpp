#include "game/strategic_game.h"

#include <cmath>

namespace ga::game {

bool is_distribution(const Mixed_strategy& strategy, double eps)
{
    if (strategy.empty()) return false;
    double total = 0.0;
    for (const double p : strategy) {
        if (!(p >= -eps) || !std::isfinite(p)) return false;
        total += p;
    }
    return std::abs(total - 1.0) <= eps * static_cast<double>(strategy.size());
}

Mixed_strategy pure_as_mixed(int action, int n_actions)
{
    common::ensure(action >= 0 && action < n_actions, "pure_as_mixed: action out of range");
    Mixed_strategy strategy(static_cast<std::size_t>(n_actions), 0.0);
    strategy[static_cast<std::size_t>(action)] = 1.0;
    return strategy;
}

std::int64_t Strategic_game::profile_count() const
{
    std::int64_t count = 1;
    for (common::Agent_id i = 0; i < n_agents(); ++i) {
        const std::int64_t actions = n_actions(i);
        common::ensure(actions > 0, "profile_count: agent with no actions");
        common::ensure(count <= (static_cast<std::int64_t>(1) << 40) / actions,
                       "profile_count: profile space too large to enumerate");
        count *= actions;
    }
    return count;
}

void Strategic_game::validate_profile(const Pure_profile& profile) const
{
    common::ensure(static_cast<int>(profile.size()) == n_agents(),
                   "validate_profile: wrong arity");
    for (common::Agent_id i = 0; i < n_agents(); ++i)
        common::ensure(is_legitimate_action(i, profile[static_cast<std::size_t>(i)]),
                       "validate_profile: illegitimate action");
}

} // namespace ga::game
