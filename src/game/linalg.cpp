#include "game/linalg.h"

#include <cmath>

#include "common/ensure.h"

namespace ga::game {

std::optional<std::vector<double>> solve_linear_system(std::vector<std::vector<double>> a,
                                                       std::vector<double> b, double pivot_eps)
{
    const std::size_t n = a.size();
    common::ensure(b.size() == n, "solve_linear_system: dimension mismatch");
    for (const auto& row : a)
        common::ensure(row.size() == n, "solve_linear_system: non-square matrix");

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
        }
        if (std::abs(a[pivot][col]) <= pivot_eps) return std::nullopt;
        std::swap(a[pivot], a[col]);
        std::swap(b[pivot], b[col]);

        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row][col] / a[col][col];
            if (factor == 0.0) continue;
            for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (std::size_t k = row + 1; k < n; ++k) acc -= a[row][k] * x[k];
        x[row] = acc / a[row][row];
    }
    return x;
}

} // namespace ga::game
