// The strategic-form game abstraction Γ = ⟨N, (Π_i), (u_i)⟩ of §2.
//
// Following the paper, u_i is a *cost* function: a selfish agent unilaterally
// deviates to a profile with strictly smaller individual cost, and the social
// cost of a profile is the sum of individual costs of honest agents. Payoff
// views (higher-is-better, as displayed in Fig. 1) are provided as negated
// costs.
#ifndef GA_GAME_STRATEGIC_GAME_H
#define GA_GAME_STRATEGIC_GAME_H

#include <cstdint>

#include "game/strategy.h"

namespace ga::game {

class Strategic_game {
public:
    virtual ~Strategic_game() = default;

    /// |N| — number of agents.
    [[nodiscard]] virtual int n_agents() const = 0;

    /// |Π_i| — number of applicable actions of agent i.
    [[nodiscard]] virtual int n_actions(common::Agent_id i) const = 0;

    /// u_i(π) — the cost agent i pays under pure profile π (lower is better).
    [[nodiscard]] virtual double cost(common::Agent_id i, const Pure_profile& profile) const = 0;

    /// Payoff view: -cost (what Fig. 1 tabulates).
    [[nodiscard]] double payoff(common::Agent_id i, const Pure_profile& profile) const
    {
        return -cost(i, profile);
    }

    /// Number of pure strategy profiles |Π| (guarded against overflow).
    [[nodiscard]] std::int64_t profile_count() const;

    /// Throws Contract_error unless `profile` is a well-formed PSP of this game.
    void validate_profile(const Pure_profile& profile) const;

    /// True iff `action` is an applicable action of agent i (the judicial
    /// service's "legitimate action choice" check, §3.2).
    [[nodiscard]] bool is_legitimate_action(common::Agent_id i, int action) const
    {
        return action >= 0 && action < n_actions(i);
    }
};

} // namespace ga::game

#endif // GA_GAME_STRATEGIC_GAME_H
