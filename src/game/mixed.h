// Mixed-strategy machinery (§2: Nash's theorem guarantees an equilibrium once
// strategies may be mixed; §5 audits agents that play them).
#ifndef GA_GAME_MIXED_H
#define GA_GAME_MIXED_H

#include <optional>

#include "game/strategic_game.h"

namespace ga::game {

/// Expected cost of agent i under a mixed profile (full enumeration of the
/// profile space — small games only).
double expected_cost(const Strategic_game& game, common::Agent_id i, const Mixed_profile& sigma);

/// Expected cost of agent i when it deviates to pure action `a` while the
/// others keep playing sigma.
double expected_cost_of_action(const Strategic_game& game, common::Agent_id i, int a,
                               const Mixed_profile& sigma);

/// Mixed Nash test: every action in every agent's support attains the minimal
/// expected cost against the others (within eps), and no action beats it.
bool is_mixed_nash(const Strategic_game& game, const Mixed_profile& sigma, double eps = 1e-7);

/// Fully-mixed equilibrium of a 2x2 game via the indifference principle;
/// nullopt when none exists in the open simplex (e.g. dominance-solvable games).
std::optional<Mixed_profile> mixed_nash_2x2(const Strategic_game& game);

/// All mixed equilibria of a two-player game found by support enumeration
/// (solves the indifference system for every support pair and keeps the
/// consistent ones). Exponential in action counts — small games only.
std::vector<Mixed_profile> support_enumeration_2p(const Strategic_game& game, double eps = 1e-9);

} // namespace ga::game

#endif // GA_GAME_MIXED_H
