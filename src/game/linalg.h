// Minimal dense linear algebra: Gaussian elimination with partial pivoting,
// sized for the indifference systems of support enumeration (a handful of
// unknowns). Not a general-purpose BLAS.
#ifndef GA_GAME_LINALG_H
#define GA_GAME_LINALG_H

#include <optional>
#include <vector>

namespace ga::game {

/// Solve A x = b for square A (row-major); nullopt when A is singular within
/// `pivot_eps`.
std::optional<std::vector<double>> solve_linear_system(std::vector<std::vector<double>> a,
                                                       std::vector<double> b,
                                                       double pivot_eps = 1e-12);

} // namespace ga::game

#endif // GA_GAME_LINALG_H
