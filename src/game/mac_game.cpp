#include "game/mac_game.h"

#include <limits>

#include "game/analysis.h"

namespace ga::game {

Mac_game::Mac_game(int stations, std::vector<double> probability_grid, double energy_cost)
    : stations_{stations}, grid_{std::move(probability_grid)}, energy_{energy_cost}
{
    common::ensure(stations_ >= 2, "Mac_game: at least two stations");
    common::ensure(!grid_.empty(), "Mac_game: non-empty probability grid");
    double previous = 0.0;
    for (const double p : grid_) {
        common::ensure(p > previous && p <= 1.0, "Mac_game: grid must increase within (0, 1]");
        previous = p;
    }
    common::ensure(energy_ >= 0.0, "Mac_game: non-negative energy cost");
}

double Mac_game::throughput(common::Agent_id i, const Pure_profile& profile) const
{
    validate_profile(profile);
    double success = grid_[static_cast<std::size_t>(profile[static_cast<std::size_t>(i)])];
    for (common::Agent_id j = 0; j < stations_; ++j) {
        if (j == i) continue;
        success *= 1.0 - grid_[static_cast<std::size_t>(profile[static_cast<std::size_t>(j)])];
    }
    return success;
}

double Mac_game::total_throughput(const Pure_profile& profile) const
{
    double total = 0.0;
    for (common::Agent_id i = 0; i < stations_; ++i) total += throughput(i, profile);
    return total;
}

double Mac_game::cost(common::Agent_id i, const Pure_profile& profile) const
{
    const double p = grid_[static_cast<std::size_t>(profile[static_cast<std::size_t>(i)])];
    return energy_ * p - throughput(i, profile);
}

Pure_profile Mac_game::best_symmetric_profile() const
{
    int best_action = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int a = 0; a < n_actions(0); ++a) {
        const Pure_profile symmetric(static_cast<std::size_t>(stations_), a);
        const double cost = social_cost(*this, symmetric);
        if (cost < best_cost) {
            best_cost = cost;
            best_action = a;
        }
    }
    return Pure_profile(static_cast<std::size_t>(stations_), best_action);
}

} // namespace ga::game
