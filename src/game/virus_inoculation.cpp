#include "game/virus_inoculation.h"

#include <cmath>

namespace ga::game {

Virus_inoculation_game::Virus_inoculation_game(const sim::Graph* graph, double inoculation_cost,
                                               double loss)
    : graph_{graph}, c_{inoculation_cost}, l_{loss}
{
    common::ensure(graph_ != nullptr, "Virus_inoculation_game: null graph");
    common::ensure(graph_->size() >= 1, "Virus_inoculation_game: empty graph");
    common::ensure(c_ > 0.0 && l_ > 0.0, "Virus_inoculation_game: positive C and L required");
    common::ensure(c_ < l_, "Virus_inoculation_game: C < L required for a non-trivial game");
}

int Virus_inoculation_game::insecure_component_size(common::Agent_id i,
                                                    const Pure_profile& profile) const
{
    if (profile[static_cast<std::size_t>(i)] == vi_inoculate) return 0;
    std::vector<bool> removed(static_cast<std::size_t>(n_agents()), false);
    for (common::Agent_id j = 0; j < n_agents(); ++j)
        removed[static_cast<std::size_t>(j)] = profile[static_cast<std::size_t>(j)] == vi_inoculate;
    return static_cast<int>(graph_->component_of(i, removed).size());
}

double Virus_inoculation_game::cost(common::Agent_id i, const Pure_profile& profile) const
{
    validate_profile(profile);
    if (profile[static_cast<std::size_t>(i)] == vi_inoculate) return c_;
    const int k = insecure_component_size(i, profile);
    return l_ * static_cast<double>(k) / static_cast<double>(n_agents());
}

Pure_profile Virus_inoculation_game::best_response_equilibrium(int sweep_cap) const
{
    Pure_profile profile(static_cast<std::size_t>(n_agents()), vi_insecure);
    for (int sweep = 0; sweep < sweep_cap; ++sweep) {
        bool changed = false;
        for (common::Agent_id i = 0; i < n_agents(); ++i) {
            const int current = profile[static_cast<std::size_t>(i)];
            Pure_profile probe = profile;
            probe[static_cast<std::size_t>(i)] = vi_insecure;
            const double cost_insecure = cost(i, probe);
            probe[static_cast<std::size_t>(i)] = vi_inoculate;
            const double cost_inoculate = cost(i, probe);
            // Strict improvement only; indifferent nodes stay put so that the
            // dynamics cannot cycle.
            const int better = cost_inoculate < cost_insecure - 1e-12 ? vi_inoculate : vi_insecure;
            if (better != current &&
                std::abs(cost_inoculate - cost_insecure) > 1e-12) {
                profile[static_cast<std::size_t>(i)] = better;
                changed = true;
            }
        }
        if (!changed) return profile;
    }
    common::ensure(false, "best_response_equilibrium: dynamics did not converge");
    return profile;
}

} // namespace ga::game
