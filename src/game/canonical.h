// Canonical example games, including the paper's Fig. 1.
#ifndef GA_GAME_CANONICAL_H
#define GA_GAME_CANONICAL_H

#include "game/matrix_game.h"

namespace ga::game {

/// Action names for the matching-pennies family.
inline constexpr int mp_heads = 0;
inline constexpr int mp_tails = 1;
inline constexpr int mp_manipulate = 2;

/// Matching pennies (§5): zero-sum 2x2, no PNE, unique mixed NE at (1/2, 1/2).
/// Agent A (row) wins 1 on a match; agent B (column) wins 1 on a mismatch.
Matrix_game matching_pennies();

/// Fig. 1 — matching pennies with B's hidden "Manipulate" strategy: identical
/// to Heads except that a mismatch with A's Tails pays B +9 (A pays 9).
/// Against A's honest (1/2, 1/2), B's expected payoff rises from 0 to 4 and
/// A's falls from 0 to -4.
Matrix_game manipulated_matching_pennies();

/// Prisoner's dilemma in prison-years costs: actions {0=cooperate, 1=defect};
/// (C,C)=(1,1), (C,D)=(3,0), (D,C)=(0,3), (D,D)=(2,2). Unique PNE (D,D).
Matrix_game prisoners_dilemma();

/// A 2x2 coordination game with two PNEs of different social cost, so PoA=3
/// and PoS=1: costs (A,A)=(1,1), (B,B)=(3,3), mixed coordinations (5,5).
Matrix_game coordination_game();

} // namespace ga::game

#endif // GA_GAME_CANONICAL_H
