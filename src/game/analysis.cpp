#include "game/analysis.h"

#include <limits>

namespace ga::game {

void for_each_profile(const Strategic_game& game,
                      const std::function<void(const Pure_profile&)>& visit)
{
    const int n = game.n_agents();
    Pure_profile profile(static_cast<std::size_t>(n), 0);
    while (true) {
        visit(profile);
        int digit = n - 1;
        while (digit >= 0) {
            if (++profile[static_cast<std::size_t>(digit)] < game.n_actions(digit)) break;
            profile[static_cast<std::size_t>(digit)] = 0;
            --digit;
        }
        if (digit < 0) return;
    }
}

std::vector<int> best_response_set(const Strategic_game& game, common::Agent_id i,
                                   const Pure_profile& pi, double eps)
{
    common::ensure(i >= 0 && i < game.n_agents(), "best_response_set: agent out of range");
    Pure_profile probe = pi;
    double best = std::numeric_limits<double>::infinity();
    std::vector<double> costs(static_cast<std::size_t>(game.n_actions(i)));
    for (int a = 0; a < game.n_actions(i); ++a) {
        probe[static_cast<std::size_t>(i)] = a;
        costs[static_cast<std::size_t>(a)] = game.cost(i, probe);
        best = std::min(best, costs[static_cast<std::size_t>(a)]);
    }
    std::vector<int> responses;
    for (int a = 0; a < game.n_actions(i); ++a) {
        if (costs[static_cast<std::size_t>(a)] <= best + eps) responses.push_back(a);
    }
    return responses;
}

int best_response(const Strategic_game& game, common::Agent_id i, const Pure_profile& pi)
{
    return best_response_set(game, i, pi).front();
}

bool is_best_response(const Strategic_game& game, common::Agent_id i, const Pure_profile& pi,
                      double eps)
{
    const std::vector<int> responses = best_response_set(game, i, pi, eps);
    const int played = pi[static_cast<std::size_t>(i)];
    for (const int a : responses) {
        if (a == played) return true;
    }
    return false;
}

bool is_pure_nash(const Strategic_game& game, const Pure_profile& pi, double eps)
{
    game.validate_profile(pi);
    for (common::Agent_id i = 0; i < game.n_agents(); ++i) {
        if (!is_best_response(game, i, pi, eps)) return false;
    }
    return true;
}

std::vector<Pure_profile> pure_nash_equilibria(const Strategic_game& game, double eps)
{
    std::vector<Pure_profile> equilibria;
    for_each_profile(game, [&](const Pure_profile& pi) {
        if (is_pure_nash(game, pi, eps)) equilibria.push_back(pi);
    });
    return equilibria;
}

double social_cost(const Strategic_game& game, const Pure_profile& pi,
                   const std::vector<bool>& honest)
{
    game.validate_profile(pi);
    common::ensure(honest.empty() || static_cast<int>(honest.size()) == game.n_agents(),
                   "social_cost: honest mask size mismatch");
    double total = 0.0;
    for (common::Agent_id i = 0; i < game.n_agents(); ++i) {
        if (!honest.empty() && !honest[static_cast<std::size_t>(i)]) continue;
        total += game.cost(i, pi);
    }
    return total;
}

Social_optimum social_optimum(const Strategic_game& game)
{
    Social_optimum best;
    best.cost = std::numeric_limits<double>::infinity();
    for_each_profile(game, [&](const Pure_profile& pi) {
        const double cost = social_cost(game, pi);
        if (cost < best.cost) {
            best.cost = cost;
            best.profile = pi;
        }
    });
    return best;
}

namespace {

std::optional<double> equilibrium_ratio(const Strategic_game& game, bool worst)
{
    const std::vector<Pure_profile> equilibria = pure_nash_equilibria(game);
    if (equilibria.empty()) return std::nullopt;
    const double optimum = social_optimum(game).cost;
    if (optimum <= 0.0) return std::nullopt;

    double selected = worst ? -std::numeric_limits<double>::infinity()
                            : std::numeric_limits<double>::infinity();
    for (const Pure_profile& pi : equilibria) {
        const double cost = social_cost(game, pi);
        selected = worst ? std::max(selected, cost) : std::min(selected, cost);
    }
    return selected / optimum;
}

} // namespace

std::optional<double> price_of_anarchy(const Strategic_game& game)
{
    return equilibrium_ratio(game, /*worst=*/true);
}

std::optional<double> price_of_stability(const Strategic_game& game)
{
    return equilibrium_ratio(game, /*worst=*/false);
}

} // namespace ga::game
