// Strategy-profile vocabulary (§2 of the paper, following Osborne-Rubinstein).
#ifndef GA_GAME_STRATEGY_H
#define GA_GAME_STRATEGY_H

#include <vector>

#include "common/ensure.h"
#include "common/ids.h"

namespace ga::game {

/// A pure strategy profile (PSP): one action index per agent.
using Pure_profile = std::vector<int>;

/// A mixed strategy for one agent: a probability for each of its actions.
using Mixed_strategy = std::vector<double>;

/// A mixed strategy profile: one distribution per agent.
using Mixed_profile = std::vector<Mixed_strategy>;

/// True iff the vector is a probability distribution up to `eps` slack.
bool is_distribution(const Mixed_strategy& strategy, double eps = 1e-9);

/// Degenerate (pure) distribution over `n_actions` actions playing `action`.
Mixed_strategy pure_as_mixed(int action, int n_actions);

} // namespace ga::game

#endif // GA_GAME_STRATEGY_H
