#include "telemetry/watchdog.h"

#include <algorithm>
#include <cstdlib>

namespace ga::telemetry {

namespace {

constexpr std::array<const char*, k_alert_kind_count> k_alert_kind_names = {
    "replica_divergence", // Alert_kind::replica_divergence
    "clock_hold_streak",  // Alert_kind::clock_hold_streak
    "foul_rate_spike",    // Alert_kind::foul_rate_spike
    "journal_eviction",   // Alert_kind::journal_eviction
    "quiesce_bound",      // Alert_kind::quiesce_bound
    "overload_collapse",  // Alert_kind::overload_collapse
    "shed_starvation",    // Alert_kind::shed_starvation
};
static_assert(k_alert_kind_names.size() == static_cast<std::size_t>(k_alert_kind_count));

} // namespace

const char* alert_kind_name(Alert_kind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    return index < k_alert_kind_names.size() ? k_alert_kind_names[index] : "unknown";
}

std::int64_t Watchdog::counter_of(const Snapshot& snap, const char* name)
{
    const auto it = snap.counters.find(name);
    return it != snap.counters.end() ? it->second : 0;
}

void Watchdog::observe(const Telemetry_sink& sink)
{
    const Snapshot& snap = sink.snapshot();
    const int shard = sink.scope().shard;
    const int epoch = sink.scope().epoch;
    Cursor& cursor = cursors_[{shard, epoch}];
    const auto alert = [&](Alert_kind kind, std::int64_t value, std::int64_t limit,
                           Tick at, std::int64_t window, std::string detail) {
        Alert a;
        a.kind = kind;
        a.shard = shard;
        a.epoch = epoch;
        a.window = window;
        a.at = at;
        a.value = value;
        a.limit = limit;
        a.detail = std::move(detail);
        alerts_.push_back(std::move(a));
    };

    // ---- Replica divergence: the outcome phase failed to find a strict
    // majority. A healthy group never increments the counter.
    const std::int64_t divergence = counter_of(snap, "outcome.divergence");
    const std::int64_t divergence_delta = divergence - cursor.divergence;
    cursor.divergence = divergence;
    if (divergence_delta > config_.max_divergence) {
        alert(Alert_kind::replica_divergence, divergence_delta, config_.max_divergence, -1, -1,
              "no strict-majority previous outcome");
    }

    // ---- Clock-hold streaks, from the journal's hold/resume edges. The
    // cursor position is absolute (evictions included), so an evicted prefix
    // is skipped, never re-read.
    std::int64_t index = snap.journal_dropped_oldest;
    if (cursor.journal_seen < index) cursor.journal_seen = index;
    for (const Event& e : snap.journal) {
        if (index++ < cursor.journal_seen) continue;
        if (e.kind == Event_kind::clock_hold) {
            cursor.hold_started = e.at;
        } else if (e.kind == Event_kind::clock_resume && cursor.hold_started >= 0) {
            const Tick streak = e.at - cursor.hold_started;
            if (streak > config_.max_hold_streak) {
                alert(Alert_kind::clock_hold_streak, streak, config_.max_hold_streak, e.at,
                      e.window, "schedule stalled on missing beacon quorum");
            }
            cursor.hold_started = -1;
        }
    }
    cursor.journal_seen = index;

    // ---- Foul-rate spike vs the trailing-window mean. Intervals without
    // completed plays carry no information and are skipped (the cursor only
    // advances when the group made window progress). A burst with an empty
    // trailing history — fouls out of nowhere — is itself a spike.
    const std::int64_t fouls = counter_of(snap, "fouls.flagged");
    const std::int64_t plays = counter_of(snap, "plays.completed");
    const std::int64_t foul_delta = fouls - cursor.fouls;
    const std::int64_t play_delta = plays - cursor.plays;
    if (play_delta > 0) {
        const double rate = static_cast<double>(foul_delta) / static_cast<double>(play_delta);
        double trailing = 0.0;
        for (const double r : cursor.rates) trailing += r;
        if (!cursor.rates.empty()) trailing /= static_cast<double>(cursor.rates.size());
        if (foul_delta >= config_.foul_spike_min && rate > config_.foul_spike_factor * trailing) {
            alert(Alert_kind::foul_rate_spike, foul_delta,
                  static_cast<std::int64_t>(config_.foul_spike_factor * trailing *
                                            static_cast<double>(play_delta)),
                  -1, -1, "interval foul rate exceeds trailing mean");
        }
        cursor.rates.push_back(rate);
        if (static_cast<int>(cursor.rates.size()) > config_.trailing_windows) {
            cursor.rates.erase(cursor.rates.begin());
        }
        cursor.fouls = fouls;
        cursor.plays = plays;
    }

    // ---- Overload collapse: the inlet's state gauge reads overloaded and
    // the interval shed more work, for collapse_windows observations in a
    // row — the front door stopped degrading and started drowning. One
    // alert per streak; a single clean observation re-arms it. An inlet-less
    // shard publishes no "ingest.state" gauge and stays silent here.
    {
        const auto state_it = snap.gauges.find("ingest.state");
        const std::int64_t shed_total = counter_of(snap, "ingest.shed");
        const std::int64_t shed_delta = shed_total - cursor.shed;
        cursor.shed = shed_total;
        const bool overloaded = state_it != snap.gauges.end() && state_it->second >= 2.0;
        if (overloaded && shed_delta > 0) {
            cursor.overload_streak += 1;
            if (cursor.overload_streak >= config_.collapse_windows && !cursor.collapse_fired) {
                cursor.collapse_fired = true;
                alert(Alert_kind::overload_collapse, cursor.overload_streak,
                      config_.collapse_windows, -1, -1,
                      "inlet overloaded and shedding with no recovery");
            }
        } else {
            cursor.overload_streak = 0;
            cursor.collapse_fired = false;
        }
    }

    // ---- Shed starvation, per priority class: class i was shed this
    // interval while admitting nothing, starvation_windows observations in a
    // row — the graded shedding floor failed and a class is starving. The
    // class set is discovered from the counter names ("ingest.shed.p<i>"),
    // which the ordered map keeps in deterministic order.
    for (const auto& [name, shed_total] : snap.counters) {
        constexpr std::string_view prefix = "ingest.shed.p";
        if (name.rfind(prefix, 0) != 0) continue;
        const int priority = std::atoi(name.c_str() + prefix.size());
        Cursor::Class_cursor& cls = cursor.classes[priority];
        const std::int64_t admit_total =
            counter_of(snap, (std::string{"ingest.admit.p"} + std::to_string(priority)).c_str());
        const std::int64_t shed_delta = shed_total - cls.shed;
        const std::int64_t admit_delta = admit_total - cls.admit;
        cls.shed = shed_total;
        cls.admit = admit_total;
        if (shed_delta > 0 && admit_delta == 0) {
            cls.streak += 1;
            if (cls.streak >= config_.starvation_windows && !cls.fired) {
                cls.fired = true;
                alert(Alert_kind::shed_starvation, cls.streak, config_.starvation_windows,
                      -1, -1,
                      std::string{"priority class p"} + std::to_string(priority) +
                          " shed without admission");
            }
        } else {
            cls.streak = 0;
            cls.fired = false;
        }
    }

    // ---- Journal eviction pressure: once per scope, the first time the
    // bounded journal drops history.
    if (snap.journal_dropped_oldest > 0 && !cursor.eviction_fired) {
        cursor.eviction_fired = true;
        alert(Alert_kind::journal_eviction, snap.journal_dropped_oldest, 0, -1, -1,
              "bounded journal dropped oldest events");
    }
}

void Watchdog::observe_quiesce(int shard, int epoch, Tick pulses, Tick limit)
{
    if (pulses <= limit) return;
    Alert a;
    a.kind = Alert_kind::quiesce_bound;
    a.shard = shard;
    a.epoch = epoch;
    a.value = pulses;
    a.limit = limit;
    a.detail = "epoch transition paused the shard past one play window";
    alerts_.push_back(std::move(a));
}

void Watchdog::adopt_scope(int old_shard, int old_epoch, int new_shard, int new_epoch)
{
    const auto it = cursors_.find({old_shard, old_epoch});
    if (it == cursors_.end()) return;
    Cursor moved = std::move(it->second);
    cursors_.erase(it);
    cursors_[{new_shard, new_epoch}] = std::move(moved);
}

} // namespace ga::telemetry
