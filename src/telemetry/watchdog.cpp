#include "telemetry/watchdog.h"

#include <algorithm>

namespace ga::telemetry {

namespace {

constexpr std::array<const char*, k_alert_kind_count> k_alert_kind_names = {
    "replica_divergence", // Alert_kind::replica_divergence
    "clock_hold_streak",  // Alert_kind::clock_hold_streak
    "foul_rate_spike",    // Alert_kind::foul_rate_spike
    "journal_eviction",   // Alert_kind::journal_eviction
    "quiesce_bound",      // Alert_kind::quiesce_bound
};
static_assert(k_alert_kind_names.size() == static_cast<std::size_t>(k_alert_kind_count));

} // namespace

const char* alert_kind_name(Alert_kind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    return index < k_alert_kind_names.size() ? k_alert_kind_names[index] : "unknown";
}

std::int64_t Watchdog::counter_of(const Snapshot& snap, const char* name)
{
    const auto it = snap.counters.find(name);
    return it != snap.counters.end() ? it->second : 0;
}

void Watchdog::observe(const Telemetry_sink& sink)
{
    const Snapshot& snap = sink.snapshot();
    const int shard = sink.scope().shard;
    const int epoch = sink.scope().epoch;
    Cursor& cursor = cursors_[{shard, epoch}];
    const auto alert = [&](Alert_kind kind, std::int64_t value, std::int64_t limit,
                           Tick at, std::int64_t window, std::string detail) {
        Alert a;
        a.kind = kind;
        a.shard = shard;
        a.epoch = epoch;
        a.window = window;
        a.at = at;
        a.value = value;
        a.limit = limit;
        a.detail = std::move(detail);
        alerts_.push_back(std::move(a));
    };

    // ---- Replica divergence: the outcome phase failed to find a strict
    // majority. A healthy group never increments the counter.
    const std::int64_t divergence = counter_of(snap, "outcome.divergence");
    const std::int64_t divergence_delta = divergence - cursor.divergence;
    cursor.divergence = divergence;
    if (divergence_delta > config_.max_divergence) {
        alert(Alert_kind::replica_divergence, divergence_delta, config_.max_divergence, -1, -1,
              "no strict-majority previous outcome");
    }

    // ---- Clock-hold streaks, from the journal's hold/resume edges. The
    // cursor position is absolute (evictions included), so an evicted prefix
    // is skipped, never re-read.
    std::int64_t index = snap.journal_dropped_oldest;
    if (cursor.journal_seen < index) cursor.journal_seen = index;
    for (const Event& e : snap.journal) {
        if (index++ < cursor.journal_seen) continue;
        if (e.kind == Event_kind::clock_hold) {
            cursor.hold_started = e.at;
        } else if (e.kind == Event_kind::clock_resume && cursor.hold_started >= 0) {
            const Tick streak = e.at - cursor.hold_started;
            if (streak > config_.max_hold_streak) {
                alert(Alert_kind::clock_hold_streak, streak, config_.max_hold_streak, e.at,
                      e.window, "schedule stalled on missing beacon quorum");
            }
            cursor.hold_started = -1;
        }
    }
    cursor.journal_seen = index;

    // ---- Foul-rate spike vs the trailing-window mean. Intervals without
    // completed plays carry no information and are skipped (the cursor only
    // advances when the group made window progress). A burst with an empty
    // trailing history — fouls out of nowhere — is itself a spike.
    const std::int64_t fouls = counter_of(snap, "fouls.flagged");
    const std::int64_t plays = counter_of(snap, "plays.completed");
    const std::int64_t foul_delta = fouls - cursor.fouls;
    const std::int64_t play_delta = plays - cursor.plays;
    if (play_delta > 0) {
        const double rate = static_cast<double>(foul_delta) / static_cast<double>(play_delta);
        double trailing = 0.0;
        for (const double r : cursor.rates) trailing += r;
        if (!cursor.rates.empty()) trailing /= static_cast<double>(cursor.rates.size());
        if (foul_delta >= config_.foul_spike_min && rate > config_.foul_spike_factor * trailing) {
            alert(Alert_kind::foul_rate_spike, foul_delta,
                  static_cast<std::int64_t>(config_.foul_spike_factor * trailing *
                                            static_cast<double>(play_delta)),
                  -1, -1, "interval foul rate exceeds trailing mean");
        }
        cursor.rates.push_back(rate);
        if (static_cast<int>(cursor.rates.size()) > config_.trailing_windows) {
            cursor.rates.erase(cursor.rates.begin());
        }
        cursor.fouls = fouls;
        cursor.plays = plays;
    }

    // ---- Journal eviction pressure: once per scope, the first time the
    // bounded journal drops history.
    if (snap.journal_dropped_oldest > 0 && !cursor.eviction_fired) {
        cursor.eviction_fired = true;
        alert(Alert_kind::journal_eviction, snap.journal_dropped_oldest, 0, -1, -1,
              "bounded journal dropped oldest events");
    }
}

void Watchdog::observe_quiesce(int shard, int epoch, Tick pulses, Tick limit)
{
    if (pulses <= limit) return;
    Alert a;
    a.kind = Alert_kind::quiesce_bound;
    a.shard = shard;
    a.epoch = epoch;
    a.value = pulses;
    a.limit = limit;
    a.detail = "epoch transition paused the shard past one play window";
    alerts_.push_back(std::move(a));
}

void Watchdog::adopt_scope(int old_shard, int old_epoch, int new_shard, int new_epoch)
{
    const auto it = cursors_.find({old_shard, old_epoch});
    if (it == cursors_.end()) return;
    Cursor moved = std::move(it->second);
    cursors_.erase(it);
    cursors_[{new_shard, new_epoch}] = std::move(moved);
}

} // namespace ga::telemetry
