#include "telemetry/json_parse.h"

#include <cctype>
#include <charconv>

namespace ga::telemetry {
namespace {

const Json_value k_null_value{};

class Parser {
public:
    explicit Parser(std::string_view text) : text_{text} {}

    Json_parse_result run()
    {
        Json_parse_result result;
        skip_ws();
        if (!parse_value(result.value)) {
            result.error = error_;
            return result;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing garbage");
            result.error = error_;
            result.value = Json_value{};
            return result;
        }
        result.ok = true;
        return result;
    }

private:
    bool fail(const char* what)
    {
        if (error_.empty()) {
            error_ = what;
            error_.append(" at byte ");
            error_.append(std::to_string(pos_));
        }
        return false;
    }

    void skip_ws()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    bool consume(char expected)
    {
        if (peek() != expected) return false;
        ++pos_;
        return true;
    }

    bool parse_value(Json_value& out)
    {
        if (++depth_ > k_max_depth) return fail("nesting too deep");
        bool ok = false;
        switch (peek()) {
        case '{': ok = parse_object(out); break;
        case '[': ok = parse_array(out); break;
        case '"':
            out.kind = Json_value::Kind::string;
            ok = parse_string(out.string);
            break;
        case 't':
        case 'f': ok = parse_literal(out); break;
        case 'n': ok = parse_literal(out); break;
        default: ok = parse_number(out); break;
        }
        --depth_;
        return ok;
    }

    bool parse_literal(Json_value& out)
    {
        const auto match = [this](std::string_view word) {
            if (text_.substr(pos_, word.size()) != word) return false;
            pos_ += word.size();
            return true;
        };
        if (match("true")) {
            out.kind = Json_value::Kind::boolean;
            out.boolean = true;
            return true;
        }
        if (match("false")) {
            out.kind = Json_value::Kind::boolean;
            out.boolean = false;
            return true;
        }
        if (match("null")) {
            out.kind = Json_value::Kind::null;
            return true;
        }
        return fail("expected literal");
    }

    bool parse_number(Json_value& out)
    {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
        bool integral = true;
        if (peek() == '.') {
            integral = false;
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            integral = false;
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
        }
        const std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") return fail("expected value");
        const char* first = token.data();
        const char* last = token.data() + token.size();
        out.kind = Json_value::Kind::number;
        out.integral = integral;
        if (integral) {
            if (std::from_chars(first, last, out.integer).ec != std::errc{}) {
                return fail("bad integer");
            }
            out.number = static_cast<double>(out.integer);
            return true;
        }
        if (std::from_chars(first, last, out.number).ec != std::errc{}) {
            return fail("bad number");
        }
        out.integer = static_cast<std::int64_t>(out.number);
        return true;
    }

    bool parse_string(std::string& out)
    {
        if (!consume('"')) return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) break;
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                unsigned code = 0;
                if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4U;
                    if (h >= '0' && h <= '9') {
                        code += static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code += static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code += static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        return fail("bad \\u escape");
                    }
                }
                // UTF-8 encode the BMP code point (the writer only escapes
                // control characters, all below 0x80; the rest is coverage).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
                    out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
                } else {
                    out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
                    out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
                    out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
                }
                break;
            }
            default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool parse_array(Json_value& out)
    {
        consume('[');
        out.kind = Json_value::Kind::array;
        skip_ws();
        if (consume(']')) return true;
        while (true) {
            Json_value element;
            skip_ws();
            if (!parse_value(element)) return false;
            out.array.push_back(std::move(element));
            skip_ws();
            if (consume(']')) return true;
            if (!consume(',')) return fail("expected ',' or ']'");
        }
    }

    bool parse_object(Json_value& out)
    {
        consume('{');
        out.kind = Json_value::Kind::object;
        skip_ws();
        if (consume('}')) return true;
        while (true) {
            skip_ws();
            std::string key;
            if (!parse_string(key)) return false;
            skip_ws();
            if (!consume(':')) return fail("expected ':'");
            skip_ws();
            Json_value member;
            if (!parse_value(member)) return false;
            out.object[std::move(key)] = std::move(member);
            skip_ws();
            if (consume('}')) return true;
            if (!consume(',')) return fail("expected ',' or '}'");
        }
    }

    static constexpr int k_max_depth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

} // namespace

const Json_value& Json_value::at(std::string_view key) const
{
    if (kind != Kind::object) return k_null_value;
    const auto it = object.find(std::string{key});
    return it != object.end() ? it->second : k_null_value;
}

std::int64_t Json_value::as_int(std::int64_t fallback) const
{
    if (kind == Kind::number) return integral ? integer : static_cast<std::int64_t>(number);
    if (kind == Kind::boolean) return boolean ? 1 : 0;
    return fallback;
}

double Json_value::as_double(double fallback) const
{
    if (kind == Kind::number) return number;
    if (kind == Kind::boolean) return boolean ? 1.0 : 0.0;
    return fallback;
}

Json_parse_result parse_json(std::string_view text)
{
    return Parser{text}.run();
}

} // namespace ga::telemetry
