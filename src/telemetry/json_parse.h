// Minimal JSON reader — the inverse of json.h's writer, just enough for
// tools (ga_inspect) to load the blobs this repo's own exporters emit and
// for tests to round-trip them. Recursive descent over the full value
// grammar (objects, arrays, strings with escapes, numbers, literals); no
// external dependencies, no streaming — a telemetry snapshot is small.
#ifndef GA_TELEMETRY_JSON_PARSE_H
#define GA_TELEMETRY_JSON_PARSE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ga::telemetry {

/// One parsed JSON value. Objects keep insertion order out of scope — they
/// are std::map, which matches the writer (exporters emit from ordered maps
/// anyway). Numbers keep both views: `number` always holds the double,
/// `integer` holds the exact value when the text was integral.
struct Json_value {
    enum class Kind : std::uint8_t { null, boolean, number, string, array, object };

    Kind kind = Kind::null;
    bool boolean = false;
    double number = 0.0;
    std::int64_t integer = 0;
    bool integral = false; ///< the source text was an integer literal
    std::string string;
    std::vector<Json_value> array;
    std::map<std::string, Json_value> object;

    [[nodiscard]] bool is_null() const { return kind == Kind::null; }
    [[nodiscard]] bool is_object() const { return kind == Kind::object; }
    [[nodiscard]] bool is_array() const { return kind == Kind::array; }

    /// Object member by key; a shared null value when absent or not an
    /// object — lookups chain without null checks.
    [[nodiscard]] const Json_value& at(std::string_view key) const;

    /// Convenience readers with defaults (null/missing → the default).
    [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const;
    [[nodiscard]] double as_double(double fallback = 0.0) const;
    [[nodiscard]] const std::string& as_string() const { return string; }
};

/// Parse result: `ok` false leaves `value` null and fills `error` with a
/// message carrying the byte offset.
struct Json_parse_result {
    bool ok = false;
    Json_value value;
    std::string error;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
[[nodiscard]] Json_parse_result parse_json(std::string_view text);

} // namespace ga::telemetry

#endif // GA_TELEMETRY_JSON_PARSE_H
