// Fabric-wide observability: deterministic counters, pulse-denominated
// latency histograms, and a structured event journal.
//
// The game authority is only trustworthy if its behavior is inspectable —
// why was an agent flagged, how long did a play take under Δ-delay, what did
// a rebalance cost — so every layer above the simulator can emit telemetry
// through a Telemetry_sink. Three rules keep the layer honest:
//
//   deterministic   every recorded value is pulse-time (engine pulses) or
//                   replicated protocol state, never wall clock or iteration
//                   order, so a run's whole telemetry snapshot is a pure
//                   function of (seed, map, config) — bit-identical across
//                   Engine/Fabric thread counts and repeated runs, exactly
//                   like the verdicts it describes;
//   non-perturbing  sinks only observe: a run with a sink attached produces
//                   the same verdicts, standings, and traffic as a run with
//                   the null sink (nullptr), which compiles hook sites down
//                   to a pointer test;
//   cheap           counter/gauge/histogram lookups return stable references
//                   hot paths cache once, histograms are fixed-bucket arrays
//                   (no allocation per record), and the journal is bounded
//                   (evictions are counted, never silent).
//
// The layer sits directly above common/ in the DAG: sim, authority,
// pipeline, metrics, and shard all may link it, and it knows nothing about
// any of them.
#ifndef GA_TELEMETRY_TELEMETRY_H
#define GA_TELEMETRY_TELEMETRY_H

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/tracer.h"

namespace ga::telemetry {

/// Pulse-time instant or duration (the fabric's only clock).
using Tick = std::int64_t;

/// Fixed-bucket latency histogram, pulse-denominated. Values in
/// [0, k_linear) get one exact bucket each — the range every per-play /
/// per-activation latency of a healthy schedule lands in (a play window is
/// period x delta pulses) — and larger values fall into power-of-two ranges
/// [k_linear * 2^i, k_linear * 2^(i+1)). Recording is two array writes; no
/// allocation ever.
class Histogram {
public:
    static constexpr int k_linear = 128; ///< exact buckets for values 0..127
    static constexpr int k_ranges = 32;  ///< doubling ranges above the linear span
    static constexpr int k_buckets = k_linear + k_ranges;

    /// Bucket index of `value` (negative values clamp to bucket 0).
    [[nodiscard]] static int bucket_of(Tick value);

    /// Smallest value mapping to bucket `b`.
    [[nodiscard]] static Tick bucket_floor(int b);

    void record(Tick value);

    [[nodiscard]] std::int64_t count() const { return count_; }
    [[nodiscard]] Tick sum() const { return sum_; }
    [[nodiscard]] Tick min() const { return count_ > 0 ? min_ : 0; }
    [[nodiscard]] Tick max() const { return count_ > 0 ? max_ : 0; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] std::int64_t bucket(int b) const;

    /// Count-weighted sum of bucket floors: sum over buckets of
    /// bucket_floor(b) * bucket(b). Equals sum() exactly while every sample
    /// is under k_linear (one exact bucket per value) and lower-bounds it
    /// within 2x beyond — so exported quantiles can be sanity-checked
    /// downstream (wsum <= sum < 2 * wsum + count) without re-deriving the
    /// bucket layout.
    [[nodiscard]] Tick weighted_sum() const;

    /// The value at quantile `q` in [0, 1]: the floor of the bucket holding
    /// the rank-ceil(q * count) sample. Exact for values under k_linear —
    /// i.e. for every latency the deterministic schedule produces in normal
    /// operation — and a lower bound within 2x beyond. 0 on an empty
    /// histogram.
    [[nodiscard]] Tick quantile(double q) const;
    [[nodiscard]] Tick p50() const { return quantile(0.50); }
    [[nodiscard]] Tick p99() const { return quantile(0.99); }

    /// Fold another histogram in (cross-shard aggregation).
    void merge(const Histogram& other);

    friend bool operator==(const Histogram&, const Histogram&) = default;

private:
    std::array<std::int64_t, k_buckets> buckets_{};
    std::int64_t count_ = 0;
    Tick sum_ = 0;
    Tick min_ = 0;
    Tick max_ = 0;
};

/// What happened. One enumerator per structured occurrence the fabric can
/// journal; kind-specific details ride in Event::a / Event::b / Event::note.
enum class Event_kind : std::uint8_t {
    play_open,          ///< a play (or k-play batch) window opened; a = batch k
    play_seal,          ///< commitments agreed (sealed); a = sealed count
    play_verdict,       ///< verdicts landed; a = punished count
    ic_start,           ///< IC activation started; a = phase index
    ic_finish,          ///< IC activation agreed; a = phase index
    foul,               ///< agent punished; a = agent, note = offence
    expulsion,          ///< agent cut off the network; a = agent
    rebalance_proposed, ///< policy proposed a plan; a = moves, b = splits+merges
    rebalance_applied,  ///< epoch transition done; a = moves, b = rebuilt groups
    net_window_open,    ///< burst/partition window became active; a = index, b = |isolated|
    net_window_close,   ///< burst/partition window healed; a = index
    clock_hold,         ///< clock held on insufficient evidence; a = held value
    clock_resume,       ///< clock stepped again after a hold; a = new value
    ingest_state,       ///< inlet health transition; a = new state, b = queue depth
    ingest_deadline     ///< queued submission shed stale; a = agent, b = pulses waited
};

/// Number of Event_kind enumerators. The static_assert pins it to the last
/// enumerator, and event_kind_name's table is sized by it — adding a kind
/// without updating both (and the name table) fails to compile, so a new
/// kind can never ship unnamed.
inline constexpr int k_event_kind_count = static_cast<int>(Event_kind::ingest_deadline) + 1;

/// Spelled-out kind (stable wire names for exporters).
[[nodiscard]] const char* event_kind_name(Event_kind kind);

/// One journal entry, keyed by (shard, epoch, play window). `at` is the
/// engine pulse of the emitting group (-1 for fabric-scope events, which
/// have no single engine clock); `window` is the play/batch index the event
/// belongs to (-1 when not tied to one).
struct Event {
    Event_kind kind{};
    int shard = -1;
    int epoch = 0;
    std::int64_t window = -1;
    Tick at = -1;
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::string note;

    friend bool operator==(const Event&, const Event&) = default;
};

/// One verdict's evidence chain: everything an operator needs to answer
/// "why was this agent punished" without replaying the run. Recorded by the
/// authority tiers at the foul phase (pure replicated state, so the chain is
/// identical at every honest replica) and folded into the fabric's carried
/// ledger at epoch edges so it survives migration/split/merge.
///
/// `agent` is the local replica slot while the record sits in a group's
/// sink; the fabric globalizes it when folding or serving provenance
/// queries. Actions are -1 where nothing decodable existed (e.g. a missing
/// commitment has no committed action).
struct Evidence {
    int shard = -1;               ///< stamped from the sink scope
    int epoch = 0;
    std::int64_t window = -1;     ///< play index (classic) / batch index (pipelined)
    Tick at = -1;                 ///< pulse the verdict landed
    int agent = -1;               ///< local slot in-group; global id once folded
    std::string offence;          ///< authority::offence_name of the local audit
    int committed = -1;           ///< action proven under the agreed commitment
    int revealed = -1;            ///< action decoded from the agreed opening
    int expected = -1;            ///< the audit standard's best response
    std::vector<int> flagged_by;  ///< replica slots whose agreed masks flagged the agent
    std::int64_t ic_activation = 0; ///< ordinal of the agreeing IC activation
    bool expelled = false;        ///< the executive later cut the agent off
    Tick expelled_at = -1;        ///< pulse of the expulsion (-1 while connected)

    friend bool operator==(const Evidence&, const Evidence&) = default;
};

/// Everything one sink recorded: registries plus the journal. Ordered maps
/// keep iteration (and thus every export) deterministic.
struct Snapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;
    std::deque<Event> journal;
    std::int64_t journal_dropped_oldest = 0; ///< events evicted by the capacity bound

    [[nodiscard]] bool empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty() && journal.empty() &&
               journal_dropped_oldest == 0;
    }

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Fold `from` into `into`: counters and gauges sum, histograms merge,
/// journals concatenate (callers fold in a deterministic order — the
/// aggregator sorts samples by (epoch, shard) first), eviction counts sum.
void merge_into(Snapshot& into, const Snapshot& from);

/// The recording surface every instrumented layer writes through. A null
/// `Telemetry_sink*` is the disabled state: every hook site is a single
/// pointer test and the run carries zero telemetry state.
///
/// Threading contract: a sink is single-writer — the fabric gives every
/// replica group its own sink and groups never share one. Within a group,
/// writes come from the harness between engine pulses and from the reference
/// replica inside a pulse; the engine's worker-pool barrier orders the two,
/// so no synchronization is needed and the journal order is the deterministic
/// schedule order.
class Telemetry_sink {
public:
    /// Where this sink's events live: stamped onto every journaled event.
    /// shard -1 = fabric scope.
    struct Scope {
        int shard = -1;
        int epoch = 0;
    };

    static constexpr std::size_t k_default_journal_capacity = 1 << 16;

    Telemetry_sink();
    explicit Telemetry_sink(Scope scope,
                            std::size_t journal_capacity = k_default_journal_capacity);

    [[nodiscard]] const Scope& scope() const { return scope_; }

    /// Re-scope (elastic fabric: an adopted group's shard id / epoch moves at
    /// an epoch edge). Already journaled events, spans, and evidence keep
    /// their original tags.
    void set_scope(Scope scope)
    {
        scope_ = scope;
        if (tracer_ != nullptr) tracer_->set_scope(scope.shard, scope.epoch);
    }

    /// Registered-on-first-use accessors. The references are stable for the
    /// sink's lifetime (map nodes never move), so hot paths look a name up
    /// once and cache the reference.
    [[nodiscard]] std::int64_t& counter(std::string_view name);
    [[nodiscard]] double& gauge(std::string_view name);
    [[nodiscard]] Histogram& histogram(std::string_view name);

    /// Journal an event: the sink stamps its scope over `e.shard`/`e.epoch`
    /// and evicts the oldest entry (counted, never silent) at capacity.
    void event(Event e);

    [[nodiscard]] const Snapshot& snapshot() const { return snap_; }

    // ---- Causal tracing (tracer.h). Spans live beside the snapshot — they
    // are per-track trace data, not mergeable registry state — and follow
    // the sink's scope.

    /// Allocate the span recorder (idempotent). Hook sites test tracer() for
    /// null exactly like the sink pointer itself, so an un-enabled sink
    /// carries zero tracing cost.
    void enable_tracer();
    [[nodiscard]] Tracer* tracer() const { return tracer_.get(); }

    // ---- Verdict provenance. Evidence rides beside the snapshot for the
    // same reason as spans: the fabric folds it into the per-agent carried
    // ledger at epoch edges rather than merging it per scope.

    /// Record one verdict's evidence chain (scope stamped like events).
    void add_evidence(Evidence e);

    /// Mark the newest evidence entry for `agent` expelled (the executive's
    /// disconnection order lands after the verdict that caused it).
    void mark_expelled(int agent, Tick at);

    [[nodiscard]] const std::vector<Evidence>& evidence() const { return evidence_; }

private:
    Scope scope_;
    std::size_t journal_capacity_;
    Snapshot snap_;
    std::unique_ptr<Tracer> tracer_;
    std::vector<Evidence> evidence_;
};

} // namespace ga::telemetry

#endif // GA_TELEMETRY_TELEMETRY_H
