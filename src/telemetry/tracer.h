// Causal tracing over the pulse clock: spans with parent/child links.
//
// Counters and the flat event journal (telemetry.h) answer "how much" and
// "what happened"; the tracer answers "inside what". Every span is a
// pulse-denominated interval on one group's engine clock — fabric run →
// (shard, epoch) → play window → play → IC round → batch-edge audit →
// rebalance quiesce — linked to its parent by id, so an exported trace
// (trace_export.h renders Chrome trace-event JSON) shows the full causal
// nesting of a run in Perfetto.
//
// The tracer obeys the same three rules as the sink it rides in:
// deterministic (begin/end are engine pulses, ids are allocation order under
// the deterministic schedule — never wall clock), non-perturbing (a null
// Tracer* compiles hook sites down to a pointer test), and cheap (recording
// appends to a vector; no lookup, no locking — single-writer like the sink).
#ifndef GA_TELEMETRY_TRACER_H
#define GA_TELEMETRY_TRACER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ga::telemetry {

using Tick = std::int64_t;

/// One pulse-denominated interval. `parent` is the id of the enclosing span
/// (0 = root of its (shard, epoch) track); `end` is -1 while the span is
/// open — the exporter clamps still-open spans (e.g. a window killed by a
/// transient fault) to the track's last tick.
struct Span {
    std::int64_t id = 0;
    std::int64_t parent = 0;
    std::string name;
    int shard = -1; ///< stamped from the tracer scope at begin time
    int epoch = 0;
    Tick begin = 0;
    Tick end = -1;
    std::int64_t a = 0; ///< span-specific detail (window index, phase, ...)
    std::int64_t b = 0;
    std::string note;

    friend bool operator==(const Span&, const Span&) = default;
};

/// Span recorder for one (shard, epoch) track. Like Telemetry_sink it is
/// single-writer: one group's reference replica and harness write it between
/// the engine's worker-pool barriers, so span ids and order are the
/// deterministic schedule order on any thread count.
class Tracer {
public:
    Tracer() = default;
    Tracer(int shard, int epoch) : shard_{shard}, epoch_{epoch} {}

    /// Re-scope (elastic carry): later spans are stamped with the new
    /// (shard, epoch); already recorded spans keep their original tags.
    void set_scope(int shard, int epoch)
    {
        shard_ = shard;
        epoch_ = epoch;
    }

    /// Open a span; returns its id (parent 0 = track root). Ids are 1-based
    /// and dense in allocation order.
    std::int64_t begin_span(std::string_view name, Tick at, std::int64_t parent = 0,
                            std::int64_t a = 0, std::int64_t b = 0, std::string note = {});

    /// Close an open span (no-op on id 0, unknown ids, or a span already
    /// closed — forgiving so hook sites never need bookkeeping branches).
    void end_span(std::int64_t id, Tick at);

    /// Record an already-completed span in one call (e.g. the k play spans a
    /// batch edge attributes retroactively). Returns its id.
    std::int64_t add_span(std::string_view name, Tick begin, Tick end, std::int64_t parent = 0,
                          std::int64_t a = 0, std::int64_t b = 0, std::string note = {});

    [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
    [[nodiscard]] bool empty() const { return spans_.empty(); }

private:
    int shard_ = -1;
    int epoch_ = 0;
    std::vector<Span> spans_;
};

} // namespace ga::telemetry

#endif // GA_TELEMETRY_TRACER_H
