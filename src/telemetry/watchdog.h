// Deterministic fabric watchdog: online health invariants over sink state.
//
// Raw telemetry tells an operator what happened; the watchdog says when what
// happened is *wrong*. It is evaluated from the fabric thread at play-window
// edges (after run_plays / run_pulses / epoch transitions — never inside a
// pulse), reading only replicated sink state, so its alert list is a pure
// function of (seed, map, config): the same run raises byte-identical
// alerts on any executor width, and a production alert can be replayed
// offline from the recorded (seed, config) pair.
//
// Invariant catalog (docs/OBSERVABILITY.md documents thresholds):
//   replica_divergence  the outcome phase found no strict-majority previous
//                       profile ("outcome.divergence" counter) — replicas
//                       disagree about what happened, the one state §3.3's
//                       announcement phase exists to prevent;
//   clock_hold_streak   a journaled clock_hold → clock_resume streak longer
//                       than the ceiling: the group made no schedule
//                       progress for that many pulses (outage/partition);
//   foul_rate_spike     fouls per completed play in the last observation
//                       interval spiked against the trailing-window mean
//                       (or appeared out of nowhere) — an attack ramping
//                       up, or an audit rule regression;
//   journal_eviction    the bounded event journal dropped its oldest
//                       entries — forensic visibility is degrading;
//   quiesce_bound       an epoch transition paused a shard for more pulses
//                       than one play window — the elastic contract broke;
//   overload_collapse   an inlet sat overloaded *and* shedding for too many
//                       consecutive observations — the front door is not
//                       degrading gracefully, it is drowning (capacity or
//                       rebalance intervention needed);
//   shed_starvation     a priority class was shed without a single admission
//                       for too many consecutive observations — graceful
//                       degradation turned into starvation of that class.
#ifndef GA_TELEMETRY_WATCHDOG_H
#define GA_TELEMETRY_WATCHDOG_H

#include <map>
#include <utility>

#include "telemetry/telemetry.h"

namespace ga::telemetry {

enum class Alert_kind : std::uint8_t {
    replica_divergence,
    clock_hold_streak,
    foul_rate_spike,
    journal_eviction,
    quiesce_bound,
    overload_collapse,
    shed_starvation,
};

inline constexpr int k_alert_kind_count = static_cast<int>(Alert_kind::shed_starvation) + 1;

/// Spelled-out kind (stable wire names for exporters).
[[nodiscard]] const char* alert_kind_name(Alert_kind kind);

/// Thresholds. Defaults are deliberately quiet on a healthy fabric: an
/// honest population over a clean net raises zero alerts.
struct Watchdog_config {
    /// Divergence observations tolerated per interval before alerting (0 =
    /// any divergence alerts; transient-fault recovery legitimately diverges
    /// once per fault, so harnesses that inject faults may raise this).
    std::int64_t max_divergence = 0;
    /// Longest tolerated clock-hold streak, in pulses.
    Tick max_hold_streak = 64;
    /// Alert when interval foul rate exceeds factor x the trailing mean.
    double foul_spike_factor = 4.0;
    /// Fouls required in the interval before a spike can alert (rules out
    /// single-foul noise).
    std::int64_t foul_spike_min = 2;
    /// Trailing intervals kept for the foul-rate mean.
    int trailing_windows = 4;
    /// Consecutive overloaded-and-shedding observations before the inlet is
    /// declared collapsing (one alert per streak; the streak re-arms once
    /// the inlet stops shedding or leaves overloaded).
    int collapse_windows = 3;
    /// Consecutive shed-without-admit observations of one priority class
    /// before it is declared starved (one alert per streak).
    int starvation_windows = 3;

    friend bool operator==(const Watchdog_config&, const Watchdog_config&) = default;
};

/// One structured alert. Replayable: re-running the same (seed, map, config)
/// reproduces it bit-for-bit, so `detail` carries context, not identity.
struct Alert {
    Alert_kind kind{};
    int shard = -1;
    int epoch = 0;
    std::int64_t window = -1; ///< journal window of the triggering entry (-1 none)
    Tick at = -1;             ///< pulse of the triggering observation (-1 none)
    std::int64_t value = 0;   ///< observed magnitude (streak pulses, fouls, ...)
    std::int64_t limit = 0;   ///< the threshold it broke
    std::string detail;

    friend bool operator==(const Alert&, const Alert&) = default;
};

class Watchdog {
public:
    explicit Watchdog(Watchdog_config config = {}) : config_{config} {}

    [[nodiscard]] const Watchdog_config& config() const { return config_; }

    /// Evaluate every invariant over one sink at a window edge. Alerts
    /// append in evaluation order; per-scope cursors make each observation
    /// incremental (an already reported streak or eviction never re-fires).
    void observe(const Telemetry_sink& sink);

    /// Epoch-transition feed: shard `shard` (epoch it retired under) was
    /// quiesced for `pulses` against a one-window bound of `limit`.
    void observe_quiesce(int shard, int epoch, Tick pulses, Tick limit);

    /// Elastic carry: a group's sink moved to a new (shard, epoch) scope at
    /// an epoch edge; move its cursor along so counters are not re-read as
    /// fresh deltas under the new key.
    void adopt_scope(int old_shard, int old_epoch, int new_shard, int new_epoch);

    [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }

private:
    /// Incremental read position into one (shard, epoch) track.
    struct Cursor {
        std::int64_t journal_seen = 0; ///< absolute journal index (evictions included)
        std::int64_t divergence = 0;
        std::int64_t fouls = 0;
        std::int64_t plays = 0;
        std::vector<double> rates; ///< trailing interval foul rates
        Tick hold_started = -1;    ///< open clock-hold streak begin
        bool eviction_fired = false;
        std::int64_t shed = 0;     ///< "ingest.shed" at the last observation
        int overload_streak = 0;   ///< consecutive overloaded-and-shedding obs
        bool collapse_fired = false; ///< alert raised for the open streak
        /// Per-priority-class shed/admit read positions and starvation streak.
        struct Class_cursor {
            std::int64_t shed = 0;
            std::int64_t admit = 0;
            int streak = 0;
            bool fired = false;
        };
        std::map<int, Class_cursor> classes;
    };

    [[nodiscard]] static std::int64_t counter_of(const Snapshot& snap, const char* name);

    Watchdog_config config_;
    std::map<std::pair<int, int>, Cursor> cursors_;
    std::vector<Alert> alerts_;
};

} // namespace ga::telemetry

#endif // GA_TELEMETRY_WATCHDOG_H
