// Minimal deterministic JSON emitter. The exporters (and the bench --json
// blobs) need byte-stable output — same snapshot, same bytes, on every
// platform — so doubles go through std::to_chars shortest round-trip form
// and object keys are emitted in the order callers provide them (snapshot
// maps are ordered).
#ifndef GA_TELEMETRY_JSON_H
#define GA_TELEMETRY_JSON_H

#include <cstdint>
#include <string>
#include <string_view>

namespace ga::telemetry {

/// Streaming writer: open/close objects and arrays, emit keyed or bare
/// values. Commas and quoting are handled; callers are responsible for
/// balanced open/close calls.
class Json_writer {
public:
    void begin_object();
    void end_object();
    void begin_array();
    void end_array();

    /// Start `"key":` then an object/array/value.
    void key(std::string_view name);

    void value(std::string_view text);
    void value(const char* text) { value(std::string_view{text}); }
    void value(std::int64_t number);
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    void value(double number);
    void value(bool flag);

    /// Shorthand: key + value.
    template <typename T> void field(std::string_view name, T&& v)
    {
        key(name);
        value(std::forward<T>(v));
    }

    [[nodiscard]] const std::string& str() const { return out_; }
    [[nodiscard]] std::string take() { return std::move(out_); }

private:
    void separate();

    std::string out_;
    bool need_comma_ = false;
};

/// JSON string escaping (quotes, backslash, control chars) without the
/// surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Shortest round-trip decimal for a double (std::to_chars), so emitted
/// numbers are byte-stable across runs and platforms.
[[nodiscard]] std::string format_double(double number);

} // namespace ga::telemetry

#endif // GA_TELEMETRY_JSON_H
