#include "telemetry/trace_export.h"

#include <algorithm>

#include "telemetry/json.h"

namespace ga::telemetry {
namespace {

// Track coordinates in the Chrome trace: one "process" per shard (fabric
// scope = pid 1), one "thread" per epoch. tid is 1-based because Perfetto
// hides tid 0 rows in some views.
int pid_of(int shard) { return shard < 0 ? 1 : shard + 2; }
int tid_of(int epoch) { return epoch + 1; }

void write_metadata(Json_writer& w, const char* what, int pid, int tid, const std::string& name)
{
    w.begin_object();
    w.field("name", what);
    w.field("ph", "M");
    w.field("pid", pid);
    w.field("tid", tid);
    w.key("args");
    w.begin_object();
    w.field("name", name);
    w.end_object();
    w.end_object();
}

Tick track_last_tick(const std::vector<Span>& spans)
{
    Tick last = 0;
    for (const Span& s : spans) {
        last = std::max({last, s.begin, s.end});
    }
    return last;
}

void write_span_pair(Json_writer& w, const Span& span, int pid, int tid, Tick clamp,
                     std::int64_t unique_id)
{
    const Tick end = span.end >= 0 ? span.end : std::max(clamp, span.begin);
    w.begin_object();
    w.field("name", span.name);
    w.field("cat", "span");
    w.field("ph", "b");
    w.field("id", unique_id);
    w.field("pid", pid);
    w.field("tid", tid);
    w.field("ts", span.begin);
    w.key("args");
    w.begin_object();
    w.field("parent", span.parent);
    w.field("a", span.a);
    w.field("b", span.b);
    if (!span.note.empty()) w.field("note", span.note);
    if (span.end < 0) w.field("clamped", true);
    w.end_object();
    w.end_object();
    w.begin_object();
    w.field("name", span.name);
    w.field("cat", "span");
    w.field("ph", "e");
    w.field("id", unique_id);
    w.field("pid", pid);
    w.field("tid", tid);
    w.field("ts", end);
    w.end_object();
}

void write_instant(Json_writer& w, const Event& e, int pid, int tid)
{
    w.begin_object();
    w.field("name", event_kind_name(e.kind));
    w.field("cat", "event");
    w.field("ph", "i");
    w.field("s", "t"); // thread-scoped instant
    w.field("pid", pid);
    w.field("tid", tid);
    w.field("ts", e.at >= 0 ? e.at : 0);
    w.key("args");
    w.begin_object();
    w.field("window", e.window);
    w.field("a", e.a);
    w.field("b", e.b);
    if (!e.note.empty()) w.field("note", e.note);
    w.end_object();
    w.end_object();
}

void write_track(Json_writer& w, const std::vector<Span>& spans, int shard, int epoch,
                 std::int64_t& next_id)
{
    const int pid = pid_of(shard);
    const int tid = tid_of(epoch);
    const Tick clamp = track_last_tick(spans);
    for (const Span& span : spans) {
        write_span_pair(w, span, pid, tid, clamp, next_id++);
    }
}

} // namespace

std::string to_chrome_trace(const Trace_report& trace, const Report* telemetry)
{
    Json_writer w;
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();

    // Metadata first: name the fabric process and every shard process/epoch
    // row that carries spans or (when a report rides along) journal events.
    write_metadata(w, "process_name", pid_of(-1), 0, "fabric");
    write_metadata(w, "thread_name", pid_of(-1), tid_of(0), "fabric run");
    for (const Scoped_spans& track : trace.shards) {
        std::string shard_name = "shard ";
        shard_name.append(std::to_string(track.shard));
        write_metadata(w, "process_name", pid_of(track.shard), 0, shard_name);
        std::string epoch_name = "epoch ";
        epoch_name.append(std::to_string(track.epoch));
        write_metadata(w, "thread_name", pid_of(track.shard), tid_of(track.epoch), epoch_name);
    }

    // Async span pairs. Exporter-assigned ids are unique across the whole
    // trace so same-named spans on one track never collapse into each other.
    std::int64_t next_id = 1;
    write_track(w, trace.fabric, -1, 0, next_id);
    for (const Scoped_spans& track : trace.shards) {
        write_track(w, track.spans, track.shard, track.epoch, next_id);
    }

    // Journaled events as instants on the matching tracks, fabric first then
    // the Report's own (epoch, shard) order.
    if (telemetry != nullptr) {
        for (const Event& e : telemetry->fabric.journal) {
            write_instant(w, e, pid_of(e.shard), tid_of(e.epoch));
        }
        for (const Scoped_snapshot& s : telemetry->shards) {
            for (const Event& e : s.telemetry.journal) {
                write_instant(w, e, pid_of(e.shard), tid_of(e.epoch));
            }
        }
    }

    w.end_array();
    w.end_object();
    return w.take();
}

} // namespace ga::telemetry
