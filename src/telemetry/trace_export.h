// Chrome trace-event JSON over recorded spans (Perfetto / chrome://tracing).
//
// Each (shard, epoch) track becomes one process/thread pair — pid = shard
// (fabric scope gets pid 1, shard s gets pid s + 2), tid = epoch + 1 — so
// the UI groups a run by shard with one timeline row per epoch, and an
// elastic run reads as rows appearing/disappearing across epochs. Spans are
// emitted as async begin/end pairs ("b"/"e"), which render nested intervals
// correctly even when the pipelined tier holds k play spans open at once;
// journaled events ride along as instants ("i") when a telemetry Report is
// supplied. Timestamps are engine pulses verbatim (1 "us" = 1 pulse), so the
// export is byte-stable whenever the run is deterministic.
#ifndef GA_TELEMETRY_TRACE_EXPORT_H
#define GA_TELEMETRY_TRACE_EXPORT_H

#include <string>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/tracer.h"

namespace ga::telemetry {

/// One (shard, epoch) span track as harvested from a live or retired group.
struct Scoped_spans {
    int shard = -1;
    int epoch = 0;
    std::vector<Span> spans;

    friend bool operator==(const Scoped_spans&, const Scoped_spans&) = default;
};

/// A whole fabric run's trace: the fabric-scope track plus every
/// per-(epoch, shard) group track in (epoch, shard) order.
struct Trace_report {
    std::vector<Span> fabric;
    std::vector<Scoped_spans> shards;

    friend bool operator==(const Trace_report&, const Trace_report&) = default;
};

/// Byte-stable Chrome trace-event JSON ({"traceEvents":[...]}). When
/// `telemetry` is non-null its journals are folded in as instant events on
/// the matching tracks. Still-open spans (end -1, e.g. a window cut short by
/// a transient fault) are clamped to the latest tick on their track.
[[nodiscard]] std::string to_chrome_trace(const Trace_report& trace,
                                          const Report* telemetry = nullptr);

} // namespace ga::telemetry

#endif // GA_TELEMETRY_TRACE_EXPORT_H
