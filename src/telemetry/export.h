// Exporters over telemetry snapshots: JSON (machine-readable, byte-stable),
// CSV series (one row per histogram / counter for spreadsheet trend lines),
// and a human print(). All three iterate ordered maps only, so their output
// is deterministic whenever the snapshots are.
#ifndef GA_TELEMETRY_EXPORT_H
#define GA_TELEMETRY_EXPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"
#include "telemetry/watchdog.h"

namespace ga::telemetry {

/// One (shard, epoch) snapshot as harvested from a live or retired group.
struct Scoped_snapshot {
    int shard = -1;
    int epoch = 0;
    Snapshot telemetry;

    friend bool operator==(const Scoped_snapshot&, const Scoped_snapshot&) = default;
};

/// A whole fabric run's telemetry: the fabric-scope sink plus every
/// per-(epoch, shard) group snapshot in (epoch, shard) order, the verdict
/// provenance chains (globalized agent ids, sorted by (agent, epoch, shard,
/// window)), and any watchdog alerts in evaluation order.
struct Report {
    Snapshot fabric;
    std::vector<Scoped_snapshot> shards;
    std::vector<Evidence> provenance;
    std::vector<Alert> alerts;

    /// Every shard snapshot and the fabric snapshot folded together.
    [[nodiscard]] Snapshot merged() const;

    friend bool operator==(const Report&, const Report&) = default;
};

/// Byte-stable JSON for one snapshot / a whole report.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);
[[nodiscard]] std::string to_json(const Report& report);

/// CSV series: header row then one row per metric —
/// kind,scope,name,count,sum,wsum,min,max,p50,p99,value.
[[nodiscard]] std::string to_csv(const Report& report);

/// Human-readable summary (counters, histogram quantiles, recent events).
void print(std::ostream& os, const Report& report, std::size_t journal_tail = 12);

} // namespace ga::telemetry

#endif // GA_TELEMETRY_EXPORT_H
