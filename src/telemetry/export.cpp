#include "telemetry/export.h"

#include <iomanip>

#include "telemetry/json.h"

namespace ga::telemetry {
namespace {

void write_histogram(Json_writer& w, const Histogram& h)
{
    w.begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("wsum", h.weighted_sum());
    w.field("min", h.min());
    w.field("max", h.max());
    w.field("p50", h.p50());
    w.field("p99", h.p99());
    // Sparse bucket list keeps the blob small and still byte-exact.
    w.key("buckets");
    w.begin_array();
    for (int b = 0; b < Histogram::k_buckets; ++b) {
        if (h.bucket(b) == 0) continue;
        w.begin_object();
        w.field("floor", Histogram::bucket_floor(b));
        w.field("n", h.bucket(b));
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

void write_event(Json_writer& w, const Event& e)
{
    w.begin_object();
    w.field("kind", event_kind_name(e.kind));
    w.field("shard", e.shard);
    w.field("epoch", e.epoch);
    w.field("window", e.window);
    w.field("at", e.at);
    w.field("a", e.a);
    w.field("b", e.b);
    if (!e.note.empty()) w.field("note", e.note);
    w.end_object();
}

void write_evidence(Json_writer& w, const Evidence& e)
{
    w.begin_object();
    w.field("agent", e.agent);
    w.field("shard", e.shard);
    w.field("epoch", e.epoch);
    w.field("window", e.window);
    w.field("at", e.at);
    w.field("offence", e.offence);
    w.field("committed", e.committed);
    w.field("revealed", e.revealed);
    w.field("expected", e.expected);
    w.key("flagged_by");
    w.begin_array();
    for (const int replica : e.flagged_by) w.value(replica);
    w.end_array();
    w.field("ic_activation", e.ic_activation);
    w.field("expelled", e.expelled);
    w.field("expelled_at", e.expelled_at);
    w.end_object();
}

void write_alert(Json_writer& w, const Alert& a)
{
    w.begin_object();
    w.field("kind", alert_kind_name(a.kind));
    w.field("shard", a.shard);
    w.field("epoch", a.epoch);
    w.field("window", a.window);
    w.field("at", a.at);
    w.field("value", a.value);
    w.field("limit", a.limit);
    if (!a.detail.empty()) w.field("detail", a.detail);
    w.end_object();
}

void write_snapshot(Json_writer& w, const Snapshot& s)
{
    w.begin_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, value] : s.counters) w.field(name, value);
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, value] : s.gauges) w.field(name, value);
    w.end_object();
    w.key("histograms");
    w.begin_object();
    for (const auto& [name, h] : s.histograms) {
        w.key(name);
        write_histogram(w, h);
    }
    w.end_object();
    w.key("journal");
    w.begin_array();
    for (const Event& e : s.journal) write_event(w, e);
    w.end_array();
    w.field("journal_dropped_oldest", s.journal_dropped_oldest);
    w.end_object();
}

void csv_snapshot_rows(std::string& out, const std::string& scope, const Snapshot& s)
{
    const auto row = [&out, &scope](const char* kind, const std::string& name) -> std::string& {
        out.append(kind);
        out.push_back(',');
        out.append(scope);
        out.push_back(',');
        out.append(name);
        return out;
    };
    for (const auto& [name, value] : s.counters) {
        row("counter", name).append(",,,,,,,,").append(std::to_string(value)).push_back('\n');
    }
    for (const auto& [name, value] : s.gauges) {
        row("gauge", name).append(",,,,,,,,").append(format_double(value)).push_back('\n');
    }
    for (const auto& [name, h] : s.histograms) {
        row("histogram", name);
        for (const std::int64_t v :
             {h.count(), h.sum(), h.weighted_sum(), h.min(), h.max(), h.p50(), h.p99()}) {
            out.push_back(',');
            out.append(std::to_string(v));
        }
        out.append(",\n");
    }
}

std::string scope_label(int shard, int epoch)
{
    if (shard < 0) return "fabric";
    std::string label = "s";
    label.append(std::to_string(shard));
    label.push_back('e');
    label.append(std::to_string(epoch));
    return label;
}

void print_snapshot(std::ostream& os, const std::string& scope, const Snapshot& s)
{
    for (const auto& [name, value] : s.counters) {
        os << "  " << std::left << std::setw(10) << scope << std::setw(28) << name << std::right
           << std::setw(12) << value << "\n";
    }
    for (const auto& [name, value] : s.gauges) {
        os << "  " << std::left << std::setw(10) << scope << std::setw(28) << name << std::right
           << std::setw(12) << format_double(value) << "\n";
    }
    for (const auto& [name, h] : s.histograms) {
        os << "  " << std::left << std::setw(10) << scope << std::setw(28) << name << std::right
           << std::setw(12) << h.count() << "  p50=" << h.p50() << " p99=" << h.p99()
           << " max=" << h.max() << "\n";
    }
}

} // namespace

Snapshot Report::merged() const
{
    Snapshot out = fabric;
    for (const Scoped_snapshot& s : shards) merge_into(out, s.telemetry);
    return out;
}

std::string to_json(const Snapshot& snapshot)
{
    Json_writer w;
    write_snapshot(w, snapshot);
    return w.take();
}

std::string to_json(const Report& report)
{
    Json_writer w;
    w.begin_object();
    w.key("fabric");
    write_snapshot(w, report.fabric);
    w.key("shards");
    w.begin_array();
    for (const Scoped_snapshot& s : report.shards) {
        w.begin_object();
        w.field("shard", s.shard);
        w.field("epoch", s.epoch);
        w.key("telemetry");
        write_snapshot(w, s.telemetry);
        w.end_object();
    }
    w.end_array();
    w.key("provenance");
    w.begin_array();
    for (const Evidence& e : report.provenance) write_evidence(w, e);
    w.end_array();
    w.key("alerts");
    w.begin_array();
    for (const Alert& a : report.alerts) write_alert(w, a);
    w.end_array();
    w.end_object();
    return w.take();
}

std::string to_csv(const Report& report)
{
    std::string out = "kind,scope,name,count,sum,wsum,min,max,p50,p99,value\n";
    csv_snapshot_rows(out, "fabric", report.fabric);
    for (const Scoped_snapshot& s : report.shards) {
        csv_snapshot_rows(out, scope_label(s.shard, s.epoch), s.telemetry);
    }
    return out;
}

void print(std::ostream& os, const Report& report, std::size_t journal_tail)
{
    os << "telemetry report — " << report.shards.size() << " shard snapshot(s)\n";
    os << "  scope     metric                             value\n";
    print_snapshot(os, "fabric", report.fabric);
    for (const Scoped_snapshot& s : report.shards) {
        print_snapshot(os, scope_label(s.shard, s.epoch), s.telemetry);
    }

    // Tail of the merged journal, fabric first then (epoch, shard) order —
    // the order Report carries them in.
    std::vector<const Event*> events;
    for (const Event& e : report.fabric.journal) events.push_back(&e);
    for (const Scoped_snapshot& s : report.shards) {
        for (const Event& e : s.telemetry.journal) events.push_back(&e);
    }
    const std::size_t begin = events.size() > journal_tail ? events.size() - journal_tail : 0;
    if (begin > 0 || !events.empty()) {
        os << "  events (" << events.size() << " total, last " << (events.size() - begin)
           << "):\n";
    }
    for (std::size_t i = begin; i < events.size(); ++i) {
        const Event& e = *events[i];
        os << "    [" << scope_label(e.shard, e.epoch) << " w" << e.window << " @" << e.at << "] "
           << event_kind_name(e.kind) << " a=" << e.a << " b=" << e.b;
        if (!e.note.empty()) os << " (" << e.note << ")";
        os << "\n";
    }

    if (!report.provenance.empty()) {
        os << "  provenance (" << report.provenance.size() << " verdict(s)):\n";
        for (const Evidence& e : report.provenance) {
            os << "    agent " << e.agent << " [" << scope_label(e.shard, e.epoch) << " w"
               << e.window << " @" << e.at << "] " << e.offence << " committed=" << e.committed
               << " revealed=" << e.revealed << " expected=" << e.expected << " flagged_by="
               << e.flagged_by.size() << (e.expelled ? " EXPELLED" : "") << "\n";
        }
    }
    if (!report.alerts.empty()) {
        os << "  alerts (" << report.alerts.size() << "):\n";
        for (const Alert& a : report.alerts) {
            os << "    " << alert_kind_name(a.kind) << " [" << scope_label(a.shard, a.epoch)
               << "] value=" << a.value << " limit=" << a.limit;
            if (!a.detail.empty()) os << " (" << a.detail << ")";
            os << "\n";
        }
    }
}

} // namespace ga::telemetry
