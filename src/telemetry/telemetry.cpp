#include "telemetry/telemetry.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ga::telemetry {

int Histogram::bucket_of(Tick value)
{
    if (value < k_linear) return static_cast<int>(std::max<Tick>(value, 0));
    // Range i covers [k_linear << i, k_linear << (i + 1)).
    const auto magnitude = static_cast<std::uint64_t>(value / k_linear);
    const int range = std::bit_width(magnitude) - 1;
    return k_linear + std::min(range, k_ranges - 1);
}

Tick Histogram::bucket_floor(int b)
{
    if (b < k_linear) return std::max(b, 0);
    return static_cast<Tick>(k_linear) << std::min(b - k_linear, k_ranges - 1);
}

void Histogram::record(Tick value)
{
    buckets_[static_cast<std::size_t>(bucket_of(value))] += 1;
    if (count_ == 0 || value < min_) min_ = value;
    if (count_ == 0 || value > max_) max_ = value;
    count_ += 1;
    sum_ += value;
}

double Histogram::mean() const
{
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::bucket(int b) const
{
    return b >= 0 && b < k_buckets ? buckets_[static_cast<std::size_t>(b)] : 0;
}

Tick Histogram::quantile(double q) const
{
    if (count_ == 0) return 0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const auto rank =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(clamped * static_cast<double>(count_))));
    std::int64_t seen = 0;
    for (int b = 0; b < k_buckets; ++b) {
        seen += buckets_[static_cast<std::size_t>(b)];
        if (seen >= rank) return bucket_floor(b);
    }
    return bucket_floor(k_buckets - 1);
}

void Histogram::merge(const Histogram& other)
{
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    for (int b = 0; b < k_buckets; ++b) {
        buckets_[static_cast<std::size_t>(b)] += other.buckets_[static_cast<std::size_t>(b)];
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

const char* event_kind_name(Event_kind kind)
{
    switch (kind) {
    case Event_kind::play_open: return "play_open";
    case Event_kind::play_seal: return "play_seal";
    case Event_kind::play_verdict: return "play_verdict";
    case Event_kind::ic_start: return "ic_start";
    case Event_kind::ic_finish: return "ic_finish";
    case Event_kind::foul: return "foul";
    case Event_kind::expulsion: return "expulsion";
    case Event_kind::rebalance_proposed: return "rebalance_proposed";
    case Event_kind::rebalance_applied: return "rebalance_applied";
    case Event_kind::net_window_open: return "net_window_open";
    case Event_kind::net_window_close: return "net_window_close";
    case Event_kind::clock_hold: return "clock_hold";
    case Event_kind::clock_resume: return "clock_resume";
    }
    return "unknown";
}

void merge_into(Snapshot& into, const Snapshot& from)
{
    for (const auto& [name, value] : from.counters) into.counters[name] += value;
    for (const auto& [name, value] : from.gauges) into.gauges[name] += value;
    for (const auto& [name, histogram] : from.histograms) into.histograms[name].merge(histogram);
    into.journal.insert(into.journal.end(), from.journal.begin(), from.journal.end());
    into.journal_dropped_oldest += from.journal_dropped_oldest;
}

Telemetry_sink::Telemetry_sink() : Telemetry_sink(Scope{}) {}

Telemetry_sink::Telemetry_sink(Scope scope, std::size_t journal_capacity)
    : scope_{scope}, journal_capacity_{std::max<std::size_t>(journal_capacity, 1)}
{
}

std::int64_t& Telemetry_sink::counter(std::string_view name)
{
    return snap_.counters[std::string{name}];
}

double& Telemetry_sink::gauge(std::string_view name)
{
    return snap_.gauges[std::string{name}];
}

Histogram& Telemetry_sink::histogram(std::string_view name)
{
    return snap_.histograms[std::string{name}];
}

void Telemetry_sink::event(Event e)
{
    e.shard = scope_.shard;
    e.epoch = scope_.epoch;
    if (snap_.journal.size() >= journal_capacity_) {
        snap_.journal.pop_front();
        snap_.journal_dropped_oldest += 1;
    }
    snap_.journal.push_back(std::move(e));
}

} // namespace ga::telemetry
