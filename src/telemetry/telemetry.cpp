#include "telemetry/telemetry.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ga::telemetry {

int Histogram::bucket_of(Tick value)
{
    if (value < k_linear) return static_cast<int>(std::max<Tick>(value, 0));
    // Range i covers [k_linear << i, k_linear << (i + 1)).
    const auto magnitude = static_cast<std::uint64_t>(value / k_linear);
    const int range = std::bit_width(magnitude) - 1;
    return k_linear + std::min(range, k_ranges - 1);
}

Tick Histogram::bucket_floor(int b)
{
    if (b < k_linear) return std::max(b, 0);
    return static_cast<Tick>(k_linear) << std::min(b - k_linear, k_ranges - 1);
}

void Histogram::record(Tick value)
{
    buckets_[static_cast<std::size_t>(bucket_of(value))] += 1;
    if (count_ == 0 || value < min_) min_ = value;
    if (count_ == 0 || value > max_) max_ = value;
    count_ += 1;
    sum_ += value;
}

double Histogram::mean() const
{
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::bucket(int b) const
{
    return b >= 0 && b < k_buckets ? buckets_[static_cast<std::size_t>(b)] : 0;
}

Tick Histogram::weighted_sum() const
{
    Tick total = 0;
    for (int b = 0; b < k_buckets; ++b) {
        total += bucket_floor(b) * buckets_[static_cast<std::size_t>(b)];
    }
    return total;
}

Tick Histogram::quantile(double q) const
{
    if (count_ == 0) return 0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const auto rank =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(clamped * static_cast<double>(count_))));
    std::int64_t seen = 0;
    for (int b = 0; b < k_buckets; ++b) {
        seen += buckets_[static_cast<std::size_t>(b)];
        if (seen >= rank) return bucket_floor(b);
    }
    return bucket_floor(k_buckets - 1);
}

void Histogram::merge(const Histogram& other)
{
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    for (int b = 0; b < k_buckets; ++b) {
        buckets_[static_cast<std::size_t>(b)] += other.buckets_[static_cast<std::size_t>(b)];
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

namespace {

// One name per enumerator, positionally. The array size is pinned to
// k_event_kind_count (itself pinned to the last enumerator), so growing the
// enum without naming the new kind is a compile error here, not an "unknown"
// leaking into exported traces.
constexpr std::array<const char*, k_event_kind_count> k_event_kind_names = {
    "play_open",          // Event_kind::play_open
    "play_seal",          // Event_kind::play_seal
    "play_verdict",       // Event_kind::play_verdict
    "ic_start",           // Event_kind::ic_start
    "ic_finish",          // Event_kind::ic_finish
    "foul",               // Event_kind::foul
    "expulsion",          // Event_kind::expulsion
    "rebalance_proposed", // Event_kind::rebalance_proposed
    "rebalance_applied",  // Event_kind::rebalance_applied
    "net_window_open",    // Event_kind::net_window_open
    "net_window_close",   // Event_kind::net_window_close
    "clock_hold",         // Event_kind::clock_hold
    "clock_resume",       // Event_kind::clock_resume
    "ingest_state",       // Event_kind::ingest_state
    "ingest_deadline",    // Event_kind::ingest_deadline
};
static_assert(k_event_kind_names.size() == static_cast<std::size_t>(k_event_kind_count));
static_assert(k_event_kind_names.back() != nullptr);

} // namespace

const char* event_kind_name(Event_kind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    return index < k_event_kind_names.size() ? k_event_kind_names[index] : "unknown";
}

void merge_into(Snapshot& into, const Snapshot& from)
{
    for (const auto& [name, value] : from.counters) into.counters[name] += value;
    for (const auto& [name, value] : from.gauges) into.gauges[name] += value;
    for (const auto& [name, histogram] : from.histograms) into.histograms[name].merge(histogram);
    into.journal.insert(into.journal.end(), from.journal.begin(), from.journal.end());
    into.journal_dropped_oldest += from.journal_dropped_oldest;
}

Telemetry_sink::Telemetry_sink() : Telemetry_sink(Scope{}) {}

Telemetry_sink::Telemetry_sink(Scope scope, std::size_t journal_capacity)
    : scope_{scope}, journal_capacity_{std::max<std::size_t>(journal_capacity, 1)}
{
}

std::int64_t& Telemetry_sink::counter(std::string_view name)
{
    return snap_.counters[std::string{name}];
}

double& Telemetry_sink::gauge(std::string_view name)
{
    return snap_.gauges[std::string{name}];
}

Histogram& Telemetry_sink::histogram(std::string_view name)
{
    return snap_.histograms[std::string{name}];
}

void Telemetry_sink::event(Event e)
{
    e.shard = scope_.shard;
    e.epoch = scope_.epoch;
    if (snap_.journal.size() >= journal_capacity_) {
        snap_.journal.pop_front();
        snap_.journal_dropped_oldest += 1;
    }
    snap_.journal.push_back(std::move(e));
}

void Telemetry_sink::enable_tracer()
{
    if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>(scope_.shard, scope_.epoch);
}

void Telemetry_sink::add_evidence(Evidence e)
{
    e.shard = scope_.shard;
    e.epoch = scope_.epoch;
    evidence_.push_back(std::move(e));
}

void Telemetry_sink::mark_expelled(int agent, Tick at)
{
    for (auto it = evidence_.rbegin(); it != evidence_.rend(); ++it) {
        if (it->agent == agent) {
            it->expelled = true;
            it->expelled_at = at;
            return;
        }
    }
}

} // namespace ga::telemetry
