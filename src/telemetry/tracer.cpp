#include "telemetry/tracer.h"

namespace ga::telemetry {

std::int64_t Tracer::begin_span(std::string_view name, Tick at, std::int64_t parent,
                                std::int64_t a, std::int64_t b, std::string note)
{
    Span span;
    span.id = static_cast<std::int64_t>(spans_.size()) + 1;
    span.parent = parent;
    span.name = std::string{name};
    span.shard = shard_;
    span.epoch = epoch_;
    span.begin = at;
    span.a = a;
    span.b = b;
    span.note = std::move(note);
    spans_.push_back(std::move(span));
    return spans_.back().id;
}

void Tracer::end_span(std::int64_t id, Tick at)
{
    if (id <= 0 || id > static_cast<std::int64_t>(spans_.size())) return;
    Span& span = spans_[static_cast<std::size_t>(id - 1)];
    if (span.end >= 0) return;
    span.end = at < span.begin ? span.begin : at;
}

std::int64_t Tracer::add_span(std::string_view name, Tick begin, Tick end, std::int64_t parent,
                              std::int64_t a, std::int64_t b, std::string note)
{
    const std::int64_t id = begin_span(name, begin, parent, a, b, std::move(note));
    end_span(id, end);
    return id;
}

} // namespace ga::telemetry
