#include "telemetry/json.h"

#include <array>
#include <charconv>
#include <cmath>

namespace ga::telemetry {

std::string json_escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static constexpr char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
                out += hex[static_cast<unsigned char>(c) & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string format_double(double number)
{
    if (!std::isfinite(number)) return "0"; // JSON has no inf/nan
    std::array<char, 64> buf{};
    const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), number);
    if (ec != std::errc{}) return "0";
    return {buf.data(), end};
}

void Json_writer::separate()
{
    if (need_comma_) out_ += ',';
    need_comma_ = false;
}

void Json_writer::begin_object()
{
    separate();
    out_ += '{';
}

void Json_writer::end_object()
{
    out_ += '}';
    need_comma_ = true;
}

void Json_writer::begin_array()
{
    separate();
    out_ += '[';
}

void Json_writer::end_array()
{
    out_ += ']';
    need_comma_ = true;
}

void Json_writer::key(std::string_view name)
{
    separate();
    out_ += '"';
    out_ += json_escape(name);
    out_ += "\":";
}

void Json_writer::value(std::string_view text)
{
    separate();
    out_ += '"';
    out_ += json_escape(text);
    out_ += '"';
    need_comma_ = true;
}

void Json_writer::value(std::int64_t number)
{
    separate();
    out_ += std::to_string(number);
    need_comma_ = true;
}

void Json_writer::value(double number)
{
    separate();
    out_ += format_double(number);
    need_comma_ = true;
}

void Json_writer::value(bool flag)
{
    separate();
    out_ += flag ? "true" : "false";
    need_comma_ = true;
}

} // namespace ga::telemetry
