#include "metrics/pom.h"

#include <algorithm>

#include "game/analysis.h"

namespace ga::metrics {

namespace {

/// Honest nodes best-respond to the *claimed* profile (liars claim
/// inoculation). Returns the realized profile: honest equilibrium actions,
/// liars actually insecure.
game::Pure_profile equilibrium_with_liars(const game::Virus_inoculation_game& game,
                                          const std::vector<bool>& liar)
{
    const int n = game.n_agents();

    // Best-response dynamics over honest nodes only, against claimed actions.
    game::Pure_profile claimed(static_cast<std::size_t>(n), game::vi_insecure);
    for (common::Agent_id i = 0; i < n; ++i) {
        if (liar[static_cast<std::size_t>(i)]) claimed[static_cast<std::size_t>(i)] = game::vi_inoculate;
    }
    for (int sweep = 0; sweep < 1000; ++sweep) {
        bool changed = false;
        for (common::Agent_id i = 0; i < n; ++i) {
            if (liar[static_cast<std::size_t>(i)]) continue;
            game::Pure_profile probe = claimed;
            probe[static_cast<std::size_t>(i)] = game::vi_insecure;
            const double cost_insecure = game.cost(i, probe);
            probe[static_cast<std::size_t>(i)] = game::vi_inoculate;
            const double cost_inoculate = game.cost(i, probe);
            const int better = cost_inoculate < cost_insecure - 1e-12 ? game::vi_inoculate
                                                                      : game::vi_insecure;
            if (better != claimed[static_cast<std::size_t>(i)] &&
                std::abs(cost_inoculate - cost_insecure) > 1e-12) {
                claimed[static_cast<std::size_t>(i)] = better;
                changed = true;
            }
        }
        if (!changed) break;
    }

    // Reality: the liars are insecure.
    game::Pure_profile actual = claimed;
    for (common::Agent_id i = 0; i < n; ++i) {
        if (liar[static_cast<std::size_t>(i)]) actual[static_cast<std::size_t>(i)] = game::vi_insecure;
    }
    return actual;
}

/// Honest social cost of `profile` (liars excluded from the sum — the paper's
/// §2 social cost sums the costs of honest agents).
double honest_cost(const game::Virus_inoculation_game& game, const game::Pure_profile& profile,
                   const std::vector<bool>& liar)
{
    double total = 0.0;
    for (common::Agent_id i = 0; i < game.n_agents(); ++i) {
        if (!liar[static_cast<std::size_t>(i)]) total += game.cost(i, profile);
    }
    return total;
}

} // namespace

Pom_point measure_pom(const Pom_config& config, int byzantine, bool with_authority,
                      common::Rng& rng)
{
    const sim::Graph grid = sim::grid_graph(config.rows, config.cols);
    const game::Virus_inoculation_game game{&grid, config.inoculation_cost, config.loss};
    const int n = game.n_agents();
    common::ensure(byzantine >= 0 && byzantine < n, "measure_pom: byzantine count out of range");

    // Baseline: all-selfish equilibrium cost on the full grid.
    const game::Pure_profile selfish = game.best_response_equilibrium();
    const double selfish_cost = game::social_cost(game, selfish);

    Pom_point point;
    point.byzantine = byzantine;
    point.selfish_cost = selfish_cost;

    if (byzantine == 0) {
        point.byzantine_cost = selfish_cost;
        point.pom = 1.0;
        return point;
    }

    double accumulated = 0.0;
    for (int trial = 0; trial < config.trials; ++trial) {
        // Random liar placement.
        std::vector<common::Agent_id> ids(static_cast<std::size_t>(n));
        for (common::Agent_id i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
        rng.shuffle(ids);
        std::vector<bool> liar(static_cast<std::size_t>(n), false);
        for (int b = 0; b < byzantine; ++b) liar[static_cast<std::size_t>(ids[static_cast<std::size_t>(b)])] = true;

        if (with_authority) {
            // Judicial detection + executive disconnection (§5.4): liars are
            // removed from the social graph; the honest re-equilibrate on the
            // reduced game, evaluated truthfully.
            sim::Graph reduced{n};
            for (common::Agent_id a = 0; a < n; ++a) {
                if (liar[static_cast<std::size_t>(a)]) continue;
                for (const common::Agent_id bgn : grid.neighbors(a)) {
                    if (bgn > a && !liar[static_cast<std::size_t>(bgn)]) reduced.add_edge(a, bgn);
                }
            }
            const game::Virus_inoculation_game reduced_game{&reduced, config.inoculation_cost,
                                                            config.loss};
            game::Pure_profile eq = reduced_game.best_response_equilibrium();
            // Liar slots are irrelevant in the reduced graph (isolated); their
            // cost is not counted.
            accumulated += honest_cost(reduced_game, eq, liar);
        } else {
            const game::Pure_profile actual = equilibrium_with_liars(game, liar);
            accumulated += honest_cost(game, actual, liar);
        }
    }

    point.byzantine_cost = accumulated / static_cast<double>(config.trials);
    point.pom = point.byzantine_cost / selfish_cost;
    return point;
}

Pom_point measure_pom_worst_case(const Pom_config& config, int byzantine, bool with_authority)
{
    const sim::Graph grid = sim::grid_graph(config.rows, config.cols);
    const game::Virus_inoculation_game game{&grid, config.inoculation_cost, config.loss};
    const int n = game.n_agents();
    common::ensure(byzantine >= 0 && byzantine < n,
                   "measure_pom_worst_case: byzantine count out of range");

    const game::Pure_profile selfish = game.best_response_equilibrium();
    const double selfish_cost = game::social_cost(game, selfish);

    const auto cost_of_placement = [&](const std::vector<bool>& liar) {
        if (with_authority) {
            sim::Graph reduced{n};
            for (common::Agent_id a = 0; a < n; ++a) {
                if (liar[static_cast<std::size_t>(a)]) continue;
                for (const common::Agent_id b : grid.neighbors(a)) {
                    if (b > a && !liar[static_cast<std::size_t>(b)]) reduced.add_edge(a, b);
                }
            }
            const game::Virus_inoculation_game reduced_game{&reduced, config.inoculation_cost,
                                                            config.loss};
            return honest_cost(reduced_game, reduced_game.best_response_equilibrium(), liar);
        }
        return honest_cost(game, equilibrium_with_liars(game, liar), liar);
    };

    std::vector<bool> liar(static_cast<std::size_t>(n), false);
    for (int placed = 0; placed < byzantine; ++placed) {
        int best_node = -1;
        double worst = -1.0;
        for (common::Agent_id v = 0; v < n; ++v) {
            if (liar[static_cast<std::size_t>(v)]) continue;
            liar[static_cast<std::size_t>(v)] = true;
            const double cost = cost_of_placement(liar);
            liar[static_cast<std::size_t>(v)] = false;
            if (cost > worst) {
                worst = cost;
                best_node = v;
            }
        }
        liar[static_cast<std::size_t>(best_node)] = true;
    }

    Pom_point point;
    point.byzantine = byzantine;
    point.selfish_cost = selfish_cost;
    point.byzantine_cost = byzantine == 0 ? selfish_cost : cost_of_placement(liar);
    point.pom = point.byzantine_cost / selfish_cost;
    return point;
}

std::vector<Pom_point> pom_curve(const Pom_config& config, int max_byzantine, bool with_authority,
                                 common::Rng& rng)
{
    std::vector<Pom_point> curve;
    for (int b = 0; b <= max_byzantine; ++b)
        curve.push_back(measure_pom(config, b, with_authority, rng));
    return curve;
}

} // namespace ga::metrics
