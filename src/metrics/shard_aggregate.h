// Cross-shard aggregation for the sharded authority fabric: folds per-shard
// harvests (plays, wire traffic, fouls, social cost) into one fabric-level
// report, including the fabric-wide price-of-anarchy ratio (total achieved
// social cost over total centralistic optimum, the §2/§6 criterion applied
// across every concurrently supervised group).
//
// This layer is deliberately authority-agnostic: it consumes plain numbers a
// front-end (src/shard/) harvests, so the metrics DAG position (below the
// authority tier) is preserved.
#ifndef GA_METRICS_SHARD_AGGREGATE_H
#define GA_METRICS_SHARD_AGGREGATE_H

#include <optional>
#include <vector>

#include "sim/engine.h"
#include "telemetry/telemetry.h"

namespace ga::metrics {

/// One shard's harvest over a measurement interval.
///
/// The elastic fabric produces one sample per *group lifetime*: groups
/// retired at an epoch edge contribute a sample tagged with the epoch they
/// retired in, live groups a sample tagged with the current epoch. Samples
/// are therefore unique per (epoch, shard) pair and sum without loss or
/// double counting even when the same shard index is rebuilt many times.
struct Shard_sample {
    int shard = -1;                 ///< shard index within the fabric
    int epoch = 0;                  ///< shard-map epoch the sample was harvested under
    int agents = 0;                 ///< agents supervised by this shard
    std::int64_t plays = 0;         ///< agreed plays completed
    sim::Traffic_stats traffic;     ///< wire cost of the shard's engine
    std::int64_t fouls = 0;         ///< punished offences across all agents
    /// Agents this sample's group expelled from the network. An expulsion
    /// carried into a rebuilt group at an epoch edge is re-enacted there but
    /// counted only by the group that ordered it, so `total_disconnected`
    /// equals the number of distinct expelled agents across epochs.
    int disconnected = 0;
    double social_cost = 0.0;       ///< sum over plays of the outcome's social cost
    /// plays x the shard game's optimum social cost; nullopt when the game is
    /// too large to enumerate (the ratio is then omitted from the report).
    std::optional<double> optimal_cost;
    /// The group's telemetry snapshot at harvest time (empty when the fabric
    /// runs without sinks). Unique per (epoch, shard) like the rest of the
    /// sample, so aggregation merges without double counting.
    telemetry::Snapshot telemetry;

    friend bool operator==(const Shard_sample&, const Shard_sample&) = default;
};

/// Fabric-level totals; operator== makes bit-identical run comparison a
/// single expression (the determinism contract of the fabric).
struct Fabric_metrics {
    int shards = 0;   ///< samples folded (group lifetimes, not unique shard ids)
    int epochs = 0;   ///< distinct shard-map epochs among the samples
    /// Agent-slots summed over samples: equals the population for a static
    /// single-epoch fabric; in an elastic run an agent contributes once per
    /// group lifetime it lived through.
    int agents = 0;
    std::int64_t total_plays = 0;
    sim::Traffic_stats total_traffic;
    std::int64_t total_fouls = 0;
    int total_disconnected = 0;
    double total_social_cost = 0.0;
    /// Fabric price of anarchy: sum social / sum optimal over the shards that
    /// report an optimum; nullopt when none does or the optimum is degenerate.
    std::optional<double> price_of_anarchy;
    std::int64_t min_shard_plays = 0;  ///< load-balance floor across shards
    std::int64_t max_shard_plays = 0;  ///< load-balance ceiling across shards
    /// Every sample's telemetry merged in (epoch, shard) order (counters sum,
    /// histograms merge, journals concatenate); empty without sinks.
    telemetry::Snapshot telemetry;
    std::vector<Shard_sample> per_shard;

    friend bool operator==(const Fabric_metrics&, const Fabric_metrics&) = default;
};

/// Fold per-shard samples (any order; the result is sorted by (epoch, shard)
/// so aggregation is executor-schedule independent). Samples must be unique
/// per (epoch, shard) — the elastic fabric's retire-once discipline; a
/// duplicate pair would double-count a group's harvest and throws.
Fabric_metrics aggregate_shards(std::vector<Shard_sample> samples);

} // namespace ga::metrics

#endif // GA_METRICS_SHARD_AGGREGATE_H
