// Price-of-malice measurement (§1.2, §5.4; definition from Moscibroda,
// Schmid, Wattenhofer [21]).
//
// Workload: the virus-inoculation game on a grid. b Byzantine nodes *lie* —
// they claim to be inoculated but stay insecure. Honest selfish nodes
// best-respond to the claimed profile; the realized social cost is evaluated
// on the actual profile. PoM(b) is the ratio of that cost to the all-selfish
// equilibrium cost.
//
// With the game authority, the judicial service audits actions against
// claims, the executive disconnects the liars (§3.4), and the honest agents
// re-equilibrate among themselves — so the measured PoM collapses to ~1,
// which is exactly the benefit the paper claims in §5.4.
#ifndef GA_METRICS_POM_H
#define GA_METRICS_POM_H

#include "common/rng.h"
#include "game/virus_inoculation.h"

namespace ga::metrics {

struct Pom_point {
    int byzantine = 0;
    double selfish_cost = 0.0;   ///< equilibrium social cost, no Byzantine agents
    double byzantine_cost = 0.0; ///< realized honest social cost with b liars
    double pom = 1.0;            ///< byzantine_cost / selfish_cost
};

struct Pom_config {
    int rows = 8;
    int cols = 8;
    double inoculation_cost = 1.0;
    double loss = 4.0;
    int trials = 10; ///< random liar placements averaged per point
};

/// Measure PoM(b) for one Byzantine count. `with_authority` switches the
/// game-authority pipeline (detect, punish by disconnection, re-equilibrate)
/// on or off.
Pom_point measure_pom(const Pom_config& config, int byzantine, bool with_authority,
                      common::Rng& rng);

/// Full curve over byzantine = 0..max_byzantine.
std::vector<Pom_point> pom_curve(const Pom_config& config, int max_byzantine,
                                 bool with_authority, common::Rng& rng);

/// Deterministic greedy *worst-case* liar placement ([21] defines PoM over
/// worst-case Byzantine behaviour): liars are added one at a time, each time
/// at the node that maximizes the honest agents' realized social cost.
/// Exponentially cheaper than exhaustive search and a certified lower bound
/// on the true worst case. `config.trials` is ignored.
Pom_point measure_pom_worst_case(const Pom_config& config, int byzantine, bool with_authority);

} // namespace ga::metrics

#endif // GA_METRICS_POM_H
