#include "metrics/convergence.h"

#include "clock/clock_sync.h"
#include "sim/engine.h"
#include "sim/malicious.h"
#include "ssba/ssba.h"

namespace ga::metrics {

namespace {

bool honest_clocks_agree(sim::Engine& engine, int n, int f)
{
    int value = -1;
    for (common::Processor_id id = 0; id < n - f; ++id) {
        const int clock = engine.processor_as<ga::clock::Clock_sync_processor>(id).clock();
        if (value < 0) value = clock;
        if (clock != value) return false;
    }
    return true;
}

} // namespace

Convergence_result measure_clock_convergence(const Convergence_config& config, common::Rng& rng)
{
    Convergence_result result;
    result.total_trials = config.trials;

    for (int trial = 0; trial < config.trials; ++trial) {
        common::Rng trial_rng = rng.split(static_cast<std::uint64_t>(trial) + 1);
        sim::Engine engine{sim::complete_graph(config.n), trial_rng.split(0)};
        // Honest processors in slots [0, n-f), babblers in the rest.
        for (common::Processor_id id = 0; id < config.n - config.f; ++id) {
            const int initial =
                static_cast<int>(trial_rng.below(static_cast<std::uint64_t>(config.period)));
            engine.install(std::make_unique<ga::clock::Clock_sync_processor>(
                               id, config.n, config.f, config.period, trial_rng.split(10 + id),
                               initial),
                           /*byzantine=*/false);
        }
        for (common::Processor_id id = config.n - config.f; id < config.n; ++id) {
            engine.install(std::make_unique<sim::Random_babbler>(id, trial_rng.split(100 + id), 8),
                           /*byzantine=*/true);
        }

        int pulses = 0;
        bool converged = false;
        while (pulses < config.pulse_cap) {
            engine.run_pulse();
            ++pulses;
            if (honest_clocks_agree(engine, config.n, config.f)) {
                converged = true;
                break;
            }
        }
        if (converged) {
            ++result.converged_trials;
            result.pulses.add(static_cast<double>(pulses));
        }
    }
    return result;
}

Closure_result audit_ssba_closure(const Closure_config& config, common::Rng& rng)
{
    const int period = config.f + 3; // exactly one EIG agreement per wrap
    Closure_result result;

    sim::Engine engine{sim::complete_graph(config.n), rng.split(0)};
    // Input provider: the honest input for the window starting at pulse p is
    // the window index encoded as bytes — every honest processor proposes the
    // same value, so validity forces the decision to equal it.
    const auto input_for_pulse = [period](common::Pulse pulse) {
        common::Bytes value;
        common::put_u64(value, static_cast<std::uint64_t>(pulse / period));
        return value;
    };

    for (common::Processor_id id = 0; id < config.n - config.f; ++id) {
        engine.install(std::make_unique<ga::ssba::Ssba_processor>(id, config.n, config.f, period,
                                                                  rng.split(10 + id),
                                                                  input_for_pulse),
                       /*byzantine=*/false);
    }
    for (common::Processor_id id = config.n - config.f; id < config.n; ++id) {
        engine.install(std::make_unique<sim::Random_babbler>(id, rng.split(100 + id), 32),
                       /*byzantine=*/true);
    }

    // Random initial configuration.
    engine.inject_transient_fault();

    // Phase 1: wait for honest clock agreement.
    const auto clocks_agree = [&] {
        int value = -1;
        for (common::Processor_id id = 0; id < config.n - config.f; ++id) {
            const int clock = engine.processor_as<ga::ssba::Ssba_processor>(id).clock();
            if (value < 0) value = clock;
            if (clock != value) return false;
        }
        return true;
    };
    int pulses = 0;
    while (!clocks_agree() && pulses < 500000) {
        engine.run_pulse();
        ++pulses;
    }
    result.convergence_pulses = pulses;

    // Phase 2: run one full slack window, then audit decision windows.
    engine.run(period);
    std::vector<std::size_t> decision_floor(static_cast<std::size_t>(config.n - config.f));
    for (common::Processor_id id = 0; id < config.n - config.f; ++id) {
        decision_floor[static_cast<std::size_t>(id)] =
            engine.processor_as<ga::ssba::Ssba_processor>(id).decisions().size();
    }

    for (int w = 0; w < config.windows; ++w) {
        engine.run(period);
        ++result.windows_audited;

        bool window_ok = true;
        common::Bytes agreed;
        bool first = true;
        for (common::Processor_id id = 0; id < config.n - config.f; ++id) {
            const auto& decisions =
                engine.processor_as<ga::ssba::Ssba_processor>(id).decisions();
            const std::size_t floor = decision_floor[static_cast<std::size_t>(id)];
            // Termination: exactly one new decision this window.
            if (decisions.size() != floor + static_cast<std::size_t>(w) + 1) {
                window_ok = false;
                break;
            }
            const common::Bytes& value = decisions.back().value;
            if (first) {
                agreed = value;
                first = false;
            } else if (value != agreed) {
                window_ok = false; // agreement violated
                break;
            }
        }
        // Validity: all honest proposed the same window index; the decision
        // must be a non-empty value (their common input).
        if (window_ok && agreed.empty()) window_ok = false;
        if (window_ok) ++result.windows_correct;
    }
    return result;
}

} // namespace ga::metrics
