#include "metrics/shard_aggregate.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/ensure.h"

namespace ga::metrics {

Fabric_metrics aggregate_shards(std::vector<Shard_sample> samples)
{
    common::ensure(!samples.empty(), "aggregate_shards: at least one shard sample");
    std::sort(samples.begin(), samples.end(), [](const Shard_sample& a, const Shard_sample& b) {
        return std::pair{a.epoch, a.shard} < std::pair{b.epoch, b.shard};
    });
    for (std::size_t s = 0; s + 1 < samples.size(); ++s) {
        common::ensure(samples[s].epoch != samples[s + 1].epoch ||
                           samples[s].shard != samples[s + 1].shard,
                       "aggregate_shards: duplicate (epoch, shard) sample");
    }

    Fabric_metrics out;
    out.shards = static_cast<int>(samples.size());
    for (std::size_t s = 0; s < samples.size(); ++s) {
        if (s == 0 || samples[s].epoch != samples[s - 1].epoch) ++out.epochs;
    }
    out.min_shard_plays = std::numeric_limits<std::int64_t>::max();
    double optimal_total = 0.0;
    double social_over_known_optima = 0.0;
    bool any_optimum = false;
    for (const Shard_sample& sample : samples) {
        out.agents += sample.agents;
        out.total_plays += sample.plays;
        out.total_traffic.pulses += sample.traffic.pulses;
        out.total_traffic.messages += sample.traffic.messages;
        out.total_traffic.payload_bytes += sample.traffic.payload_bytes;
        out.total_traffic.dropped += sample.traffic.dropped;
        out.total_traffic.delayed += sample.traffic.delayed;
        telemetry::merge_into(out.telemetry, sample.telemetry);
        out.total_fouls += sample.fouls;
        out.total_disconnected += sample.disconnected;
        out.total_social_cost += sample.social_cost;
        out.min_shard_plays = std::min(out.min_shard_plays, sample.plays);
        out.max_shard_plays = std::max(out.max_shard_plays, sample.plays);
        if (sample.optimal_cost.has_value()) {
            any_optimum = true;
            optimal_total += *sample.optimal_cost;
            social_over_known_optima += sample.social_cost;
        }
    }
    if (any_optimum && optimal_total > 0.0) {
        out.price_of_anarchy = social_over_known_optima / optimal_total;
    }
    out.per_shard = std::move(samples);
    return out;
}

} // namespace ga::metrics
