// Empirical validation harness for Theorem 1 (Lemmas 2 and 3): convergence
// time of the self-stabilizing clock substrate from arbitrary configurations,
// and the closure audit — one correct Byzantine agreement per M-pulse window
// after convergence.
#ifndef GA_METRICS_CONVERGENCE_H
#define GA_METRICS_CONVERGENCE_H

#include "common/rng.h"
#include "common/stats.h"

namespace ga::metrics {

struct Convergence_config {
    int n = 4;
    int f = 1;
    int period = 4;        ///< clock size M
    int trials = 20;       ///< random initial configurations
    int pulse_cap = 200000; ///< per-trial safety cap
};

struct Convergence_result {
    int converged_trials = 0;
    int total_trials = 0;
    common::Running_stats pulses; ///< pulses until all honest clocks agree
};

/// Start every trial from uniformly random clock values with f Byzantine
/// babblers; count pulses until every honest clock holds the same value (the
/// safe-configuration predicate of Lemma 2 — from there closure is
/// deterministic).
Convergence_result measure_clock_convergence(const Convergence_config& config,
                                             common::Rng& rng);

struct Closure_config {
    int n = 4;
    int f = 1;
    int windows = 20; ///< agreement windows to audit after convergence
};

struct Closure_result {
    int windows_audited = 0;
    int windows_correct = 0; ///< termination + agreement + validity all held
    int convergence_pulses = 0;
};

/// Run the full SSBA composition from a random configuration with Byzantine
/// babblers; after honest clocks agree, audit `windows` consecutive M-pulse
/// windows: every honest processor must decide exactly once per window, all
/// decisions must match, and when every honest input is v the decision is v.
Closure_result audit_ssba_closure(const Closure_config& config, common::Rng& rng);

} // namespace ga::metrics

#endif // GA_METRICS_CONVERGENCE_H
