// Multi-round anarchy cost measurement for the supervised RRA game (§6):
// the R(k) series against Theorem 5's bound 1 + 2b/k and Lemma 6's spread
// invariant Delta(k) <= 2n-1.
#ifndef GA_METRICS_ANARCHY_H
#define GA_METRICS_ANARCHY_H

#include "common/rng.h"
#include "game/resource_allocation.h"

namespace ga::metrics {

struct Anarchy_point {
    int k = 0;                 ///< rounds played
    double mean_ratio = 0.0;   ///< mean R(k) over trials (EM(k)/OPT(k))
    double max_ratio = 0.0;    ///< worst trial
    double bound = 0.0;        ///< Theorem 5: 1 + 2b/k
    std::int64_t max_spread = 0; ///< worst Delta(k); Lemma 6 bound is 2n-1
};

struct Anarchy_config {
    int agents = 16;
    int bins = 4;
    game::Rra_rule rule = game::Rra_rule::symmetric_mixed;
    int trials = 8;
};

/// Play the RRA process to max(checkpoints) rounds, recording R(k) at each
/// checkpoint (checkpoints must be increasing).
std::vector<Anarchy_point> rra_anarchy_series(const Anarchy_config& config,
                                              const std::vector<int>& checkpoints,
                                              common::Rng& rng);

} // namespace ga::metrics

#endif // GA_METRICS_ANARCHY_H
