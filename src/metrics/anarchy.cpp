#include "metrics/anarchy.h"

#include <algorithm>

#include "common/ensure.h"

namespace ga::metrics {

std::vector<Anarchy_point> rra_anarchy_series(const Anarchy_config& config,
                                              const std::vector<int>& checkpoints,
                                              common::Rng& rng)
{
    common::ensure(!checkpoints.empty(), "rra_anarchy_series: no checkpoints");
    common::ensure(std::is_sorted(checkpoints.begin(), checkpoints.end()),
                   "rra_anarchy_series: checkpoints must be increasing");
    common::ensure(checkpoints.front() >= 1, "rra_anarchy_series: checkpoints start at 1");

    std::vector<Anarchy_point> series(checkpoints.size());
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
        series[c].k = checkpoints[c];
        series[c].bound =
            1.0 + 2.0 * static_cast<double>(config.bins) / static_cast<double>(checkpoints[c]);
    }

    for (int trial = 0; trial < config.trials; ++trial) {
        game::Rra_process process{config.agents, config.bins, config.rule,
                                  rng.split(static_cast<std::uint64_t>(trial) + 1)};
        std::size_t next_checkpoint = 0;
        for (int k = 1; k <= checkpoints.back(); ++k) {
            process.play_round();
            if (next_checkpoint < checkpoints.size() && k == checkpoints[next_checkpoint]) {
                Anarchy_point& point = series[next_checkpoint];
                const double ratio = process.anarchy_ratio();
                point.mean_ratio += ratio / static_cast<double>(config.trials);
                point.max_ratio = std::max(point.max_ratio, ratio);
                point.max_spread = std::max(point.max_spread, process.spread());
                ++next_checkpoint;
            }
        }
    }
    return series;
}

} // namespace ga::metrics
