// From-scratch SHA-256 (FIPS 180-4).
//
// The commitment scheme of §3.3/§5.3 needs a collision-resistant hash; nothing
// else in the repository depends on external crypto libraries, so the whole
// middleware builds offline.
#ifndef GA_CRYPTO_SHA256_H
#define GA_CRYPTO_SHA256_H

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ga::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
public:
    Sha256();

    /// Absorb more input; may be called repeatedly.
    void update(const std::uint8_t* data, std::size_t len);
    void update(const common::Bytes& data) { update(data.data(), data.size()); }

    /// Finish and return the digest; the context must not be reused afterwards.
    Digest finish();

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffered_ = 0;
    std::uint64_t total_bits_ = 0;
    bool finished_ = false;
};

/// One-shot convenience.
Digest sha256(const common::Bytes& data);

/// Digest as a 64-char lower-case hex string.
std::string digest_hex(const Digest& digest);

/// Digest copied into a Bytes buffer (for embedding in messages).
common::Bytes digest_bytes(const Digest& digest);

} // namespace ga::crypto

#endif // GA_CRYPTO_SHA256_H
