// SHA-256 (FIPS 180-4), from scratch.
//
// The commitment scheme of §3.3/§5.3 needs a collision-resistant hash; nothing
// else in the repository depends on external crypto libraries, so the whole
// middleware builds offline. Compression dispatches at runtime to the x86
// SHA-NI instruction set when the CPU provides it (the batched play pipeline
// rebuilds a Merkle tree per agent per window, so block throughput is on the
// authority tier's hot path); the portable implementation is the fallback and
// the reference both paths are tested against.
#ifndef GA_CRYPTO_SHA256_H
#define GA_CRYPTO_SHA256_H

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ga::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
public:
    Sha256();

    /// Absorb more input; may be called repeatedly.
    void update(const std::uint8_t* data, std::size_t len);
    void update(const common::Bytes& data) { update(data.data(), data.size()); }

    /// Finish and return the digest; the context must not be reused afterwards.
    Digest finish();

private:
    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffered_ = 0;
    std::uint64_t total_bits_ = 0;
    bool finished_ = false;
};

/// One-shot convenience.
Digest sha256(const common::Bytes& data);

/// Digest as a 64-char lower-case hex string.
std::string digest_hex(const Digest& digest);

/// Digest copied into a Bytes buffer (for embedding in messages).
common::Bytes digest_bytes(const Digest& digest);

/// True when this build and CPU run the SHA-NI accelerated compression.
bool sha256_accelerated();

namespace detail {

/// Compress `blocks` consecutive 64-byte blocks into `state`. The dispatcher
/// picks SHA-NI when available; the portable path is the FIPS reference
/// (exposed so tests can cross-check the two).
void compress(std::array<std::uint32_t, 8>& state, const std::uint8_t* data, std::size_t blocks);
void compress_portable(std::array<std::uint32_t, 8>& state, const std::uint8_t* data,
                       std::size_t blocks);

} // namespace detail

} // namespace ga::crypto

#endif // GA_CRYPTO_SHA256_H
