#include "crypto/merkle.h"

#include "common/ensure.h"

namespace ga::crypto {

namespace {

Digest node_digest(const Digest& left, const Digest& right)
{
    common::Bytes preimage;
    preimage.reserve(1 + left.size() + right.size());
    preimage.push_back(0x01);
    preimage.insert(preimage.end(), left.begin(), left.end());
    preimage.insert(preimage.end(), right.begin(), right.end());
    return sha256(preimage);
}

} // namespace

Digest Merkle_tree::leaf_digest(const common::Bytes& payload)
{
    common::Bytes preimage;
    preimage.reserve(1 + payload.size());
    preimage.push_back(0x00);
    preimage.insert(preimage.end(), payload.begin(), payload.end());
    return sha256(preimage);
}

Merkle_tree::Merkle_tree(const std::vector<common::Bytes>& leaves)
{
    common::ensure(!leaves.empty(), "Merkle_tree requires at least one leaf");
    std::vector<Digest> level;
    level.reserve(leaves.size());
    for (const auto& leaf : leaves) level.push_back(leaf_digest(leaf));
    levels_.push_back(std::move(level));

    while (levels_.back().size() > 1) {
        const auto& below = levels_.back();
        std::vector<Digest> above;
        above.reserve((below.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < below.size(); i += 2)
            above.push_back(node_digest(below[i], below[i + 1]));
        if (below.size() % 2 == 1) above.push_back(below.back()); // promote odd node
        levels_.push_back(std::move(above));
    }
}

Merkle_proof Merkle_tree::prove(std::size_t index) const
{
    common::ensure(index < leaf_count(), "Merkle_tree::prove: index out of range");
    Merkle_proof proof;
    std::size_t pos = index;
    for (std::size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
        const auto& level = levels_[depth];
        const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
        if (sibling < level.size()) {
            proof.push_back(Proof_node{level[sibling], sibling < pos});
        }
        pos /= 2;
    }
    return proof;
}

bool verify_inclusion(const Digest& root, const common::Bytes& payload, const Merkle_proof& proof)
{
    Digest current = Merkle_tree::leaf_digest(payload);
    for (const auto& node : proof) {
        current = node.sibling_is_left ? node_digest(node.sibling, current)
                                       : node_digest(current, node.sibling);
    }
    return current == root;
}

} // namespace ga::crypto
