// HMAC-SHA256 (RFC 2104). Used to derive per-round pseudo-random values from a
// committed seed in the mixed-strategy audit (§5.3): the judicial service can
// replay exactly the key stream an agent claimed to use.
#ifndef GA_CRYPTO_HMAC_H
#define GA_CRYPTO_HMAC_H

#include "crypto/sha256.h"

namespace ga::crypto {

/// HMAC-SHA256 of `message` under `key`.
Digest hmac_sha256(const common::Bytes& key, const common::Bytes& message);

/// Deterministic 64-bit value derived from (seed, label, counter); the basis
/// of the auditable PRNG used by honest agents for mixed-strategy sampling.
std::uint64_t prf_u64(const common::Bytes& seed, std::uint64_t label, std::uint64_t counter);

} // namespace ga::crypto

#endif // GA_CRYPTO_HMAC_H
