// Merkle trees over SHA-256.
//
// Supports the batched-audit extension of §5.3: instead of auditing every
// round, agents commit to the Merkle root of a whole window of per-round
// values; during an audit, individual rounds are opened with logarithmic-size
// inclusion proofs.
#ifndef GA_CRYPTO_MERKLE_H
#define GA_CRYPTO_MERKLE_H

#include <vector>

#include "crypto/sha256.h"

namespace ga::crypto {

/// One step of an inclusion proof: the sibling digest and which side it is on.
struct Proof_node {
    Digest sibling{};
    bool sibling_is_left = false;
};

/// Inclusion proof for one leaf.
using Merkle_proof = std::vector<Proof_node>;

/// Immutable Merkle tree built over leaf payloads. Leaves are domain-separated
/// from interior nodes (0x00 / 0x01 prefixes) to rule out second-preimage
/// splicing attacks. Odd nodes are promoted (Bitcoin-style duplication is not
/// used, so no mutation ambiguity).
class Merkle_tree {
public:
    /// Build from leaf payloads; at least one leaf required.
    explicit Merkle_tree(const std::vector<common::Bytes>& leaves);

    [[nodiscard]] const Digest& root() const { return levels_.back().front(); }
    [[nodiscard]] std::size_t leaf_count() const { return levels_.front().size(); }

    /// Inclusion proof for leaf `index`.
    [[nodiscard]] Merkle_proof prove(std::size_t index) const;

    /// Digest of a leaf payload (domain-separated), exposed for verification.
    static Digest leaf_digest(const common::Bytes& payload);

private:
    std::vector<std::vector<Digest>> levels_; // levels_[0] = leaves, back() = root
};

/// Verify that `payload` is the `index`-free leaf under `root` via `proof`.
bool verify_inclusion(const Digest& root, const common::Bytes& payload, const Merkle_proof& proof);

} // namespace ga::crypto

#endif // GA_CRYPTO_MERKLE_H
