// Seed commitments and the auditable PRNG for mixed strategies (§5.2-5.3).
//
// An honest agent commits to a private seed before a sequence of plays. In
// round t it draws its action from the elected mixed strategy by inverse-CDF
// sampling on prf_u64(seed, agent, t). When the seed is revealed, any auditor
// can replay every draw and confirm that each revealed action was exactly the
// one the committed seed dictates — a sequence of "random" choices is thereby
// validated as following the distribution of a credible mixed strategy.
#ifndef GA_CRYPTO_SEED_COMMITMENT_H
#define GA_CRYPTO_SEED_COMMITMENT_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "crypto/commitment.h"

namespace ga::crypto {

/// A committed PRNG seed (32 random bytes under a hash commitment).
struct Seed_commitment {
    Commitment commitment;
    Opening opening; ///< held privately until the audit point
};

/// Draw a fresh seed and commit to it.
Seed_commitment commit_seed(common::Rng& rng);

/// The deterministic action an agent with `seed` must play in round `counter`
/// when its elected mixed strategy is `distribution` (probabilities, sum ~1).
/// Sampling is inverse-CDF on a 53-bit uniform value derived from the seed, so
/// auditor and agent agree bit-for-bit.
int sampled_action(const common::Bytes& seed, std::uint64_t agent_label, std::uint64_t counter,
                   const std::vector<double>& distribution);

/// Replay an entire revealed history: true iff every `actions[t]` equals
/// sampled_action(seed, label, first_counter + t, distribution).
bool audit_history(const common::Bytes& seed, std::uint64_t agent_label,
                   std::uint64_t first_counter, const std::vector<double>& distribution,
                   const std::vector<int>& actions);

} // namespace ga::crypto

#endif // GA_CRYPTO_SEED_COMMITMENT_H
