#include "crypto/seed_commitment.h"

#include <cmath>

#include "crypto/hmac.h"

namespace ga::crypto {

Seed_commitment commit_seed(common::Rng& rng)
{
    common::Bytes seed;
    seed.reserve(32);
    for (int i = 0; i < 4; ++i) {
        const std::uint64_t word = rng.next_u64();
        for (int b = 0; b < 8; ++b) seed.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
    }
    Committed committed = commit(seed, rng);
    return Seed_commitment{committed.commitment, std::move(committed.opening)};
}

int sampled_action(const common::Bytes& seed, std::uint64_t agent_label, std::uint64_t counter,
                   const std::vector<double>& distribution)
{
    common::ensure(!distribution.empty(), "sampled_action: empty distribution");
    const std::uint64_t raw = prf_u64(seed, agent_label, counter);
    const double point = static_cast<double>(raw >> 11) * 0x1.0p-53;

    double cumulative = 0.0;
    int last_positive = -1;
    for (std::size_t a = 0; a < distribution.size(); ++a) {
        common::ensure(distribution[a] >= 0.0 && std::isfinite(distribution[a]),
                       "sampled_action: invalid probability");
        if (distribution[a] > 0.0) last_positive = static_cast<int>(a);
        cumulative += distribution[a];
        if (point < cumulative) return static_cast<int>(a);
    }
    common::ensure(last_positive >= 0, "sampled_action: all-zero distribution");
    return last_positive; // numerical slack when probabilities sum to slightly < 1
}

bool audit_history(const common::Bytes& seed, std::uint64_t agent_label,
                   std::uint64_t first_counter, const std::vector<double>& distribution,
                   const std::vector<int>& actions)
{
    for (std::size_t t = 0; t < actions.size(); ++t) {
        if (actions[t] != sampled_action(seed, agent_label, first_counter + t, distribution))
            return false;
    }
    return true;
}

} // namespace ga::crypto
