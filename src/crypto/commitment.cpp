#include "crypto/commitment.h"

namespace ga::crypto {

namespace {

constexpr std::size_t nonce_size = 32;

} // namespace

Committed commit(const common::Bytes& payload, common::Rng& rng)
{
    Opening opening;
    opening.nonce.reserve(nonce_size);
    for (std::size_t i = 0; i < nonce_size; i += 8) {
        const std::uint64_t word = rng.next_u64();
        for (int b = 0; b < 8; ++b)
            opening.nonce.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
    }
    opening.payload = payload;
    return Committed{recommit(opening), std::move(opening)};
}

Commitment recommit(const Opening& opening)
{
    common::Bytes preimage;
    common::put_bytes(preimage, opening.nonce);
    common::put_bytes(preimage, opening.payload);
    return Commitment{sha256(preimage)};
}

bool verify(const Commitment& commitment, const Opening& opening)
{
    return recommit(opening) == commitment;
}

common::Bytes encode(const Commitment& commitment)
{
    return common::Bytes{commitment.digest.begin(), commitment.digest.end()};
}

Commitment decode_commitment(common::Byte_reader& reader)
{
    Commitment commitment;
    for (auto& byte : commitment.digest) byte = reader.get_u8();
    return commitment;
}

common::Bytes encode(const Opening& opening)
{
    common::Bytes out;
    common::put_bytes(out, opening.nonce);
    common::put_bytes(out, opening.payload);
    return out;
}

Opening decode_opening(common::Byte_reader& reader)
{
    Opening opening;
    opening.nonce = reader.get_bytes();
    opening.payload = reader.get_bytes();
    return opening;
}

} // namespace ga::crypto
