#include "crypto/sha256.h"

#include <cstring>

#include "common/ensure.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define GA_SHA_NI_BUILD 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace ga::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> k_round = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

#ifdef GA_SHA_NI_BUILD

/// One-time CPUID probe: SHA extensions plus the SSE4.1/SSSE3 shuffles the
/// kernel below uses.
bool detect_sha_ni()
{
    unsigned a = 0;
    unsigned b = 0;
    unsigned c = 0;
    unsigned d = 0;
    if (__get_cpuid_count(7, 0, &a, &b, &c, &d) == 0) return false;
    const bool sha = (b & (1u << 29)) != 0;
    if (__get_cpuid(1, &a, &b, &c, &d) == 0) return false;
    const bool sse41 = (c & (1u << 19)) != 0;
    const bool ssse3 = (c & (1u << 9)) != 0;
    return sha && sse41 && ssse3;
}

/// Four rounds: two _mm_sha256rnds2_epu32 halves over one message quad.
__attribute__((target("sha,sse4.1,ssse3"))) inline void
sha_ni_rounds4(__m128i& state0, __m128i& state1, __m128i msg)
{
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
}

__attribute__((target("sha,sse4.1,ssse3"))) inline __m128i sha_ni_k4(int g)
{
    return _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(&k_round[static_cast<std::size_t>(4 * g)]));
}

/// SHA-NI compression: the standard two-lane formulation (state packed as
/// ABEF/CDGH, four message words per _mm_sha256rnds2_epu32 pair).
__attribute__((target("sha,sse4.1,ssse3"))) void
compress_sha_ni(std::array<std::uint32_t, 8>& state, const std::uint8_t* data,
                std::size_t blocks)
{
    const __m128i byteswap =
        _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

    __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
    __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);
    state1 = _mm_shuffle_epi32(state1, 0x1B);
    __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);         // ABEF
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);              // CDGH

    while (blocks-- > 0) {
        const __m128i abef_save = state0;
        const __m128i cdgh_save = state1;

        __m128i m[4];
        for (int g = 0; g < 4; ++g) {
            m[g] = _mm_shuffle_epi8(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * g)), byteswap);
        }

        for (int g = 0; g < 4; ++g) sha_ni_rounds4(state0, state1, _mm_add_epi32(m[g], sha_ni_k4(g)));
        for (int g = 4; g < 16; ++g) {
            // w[t] = w[t-16] + s0(w[t-15]) + w[t-7] + s1(w[t-2]), four at a
            // time: msg1 folds in s0, the alignr supplies w[t-7], msg2 s1.
            const __m128i w15 = m[(g + 1) % 4];
            const __m128i w2 = m[(g + 2) % 4];
            const __m128i w1 = m[(g + 3) % 4];
            m[g % 4] = _mm_sha256msg2_epu32(
                _mm_add_epi32(_mm_sha256msg1_epu32(m[g % 4], w15), _mm_alignr_epi8(w1, w2, 4)),
                w1);
            sha_ni_rounds4(state0, state1, _mm_add_epi32(m[g % 4], sha_ni_k4(g)));
        }

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);
        data += 64;
    }

    tmp = _mm_shuffle_epi32(state0, 0x1B);
    state1 = _mm_shuffle_epi32(state1, 0xB1);
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);
    state1 = _mm_alignr_epi8(state1, tmp, 8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif // GA_SHA_NI_BUILD

} // namespace

namespace detail {

void compress_portable(std::array<std::uint32_t, 8>& state, const std::uint8_t* data,
                       std::size_t blocks)
{
    while (blocks-- > 0) {
        std::array<std::uint32_t, 64> w;
        for (std::size_t t = 0; t < 16; ++t) {
            w[t] = (static_cast<std::uint32_t>(data[4 * t]) << 24) |
                   (static_cast<std::uint32_t>(data[4 * t + 1]) << 16) |
                   (static_cast<std::uint32_t>(data[4 * t + 2]) << 8) |
                   static_cast<std::uint32_t>(data[4 * t + 3]);
        }
        for (std::size_t t = 16; t < 64; ++t) {
            const std::uint32_t s0 =
                rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
            const std::uint32_t s1 = rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16] + s0 + w[t - 7] + s1;
        }

        std::uint32_t a = state[0];
        std::uint32_t b = state[1];
        std::uint32_t c = state[2];
        std::uint32_t d = state[3];
        std::uint32_t e = state[4];
        std::uint32_t f = state[5];
        std::uint32_t g = state[6];
        std::uint32_t h = state[7];

        for (std::size_t t = 0; t < 64; ++t) {
            const std::uint32_t big_s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
            const std::uint32_t ch = (e & f) ^ (~e & g);
            const std::uint32_t temp1 = h + big_s1 + ch + k_round[t] + w[t];
            const std::uint32_t big_s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
            const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
            const std::uint32_t temp2 = big_s0 + maj;
            h = g;
            g = f;
            f = e;
            e = d + temp1;
            d = c;
            c = b;
            b = a;
            a = temp1 + temp2;
        }

        state[0] += a;
        state[1] += b;
        state[2] += c;
        state[3] += d;
        state[4] += e;
        state[5] += f;
        state[6] += g;
        state[7] += h;
        data += 64;
    }
}

void compress(std::array<std::uint32_t, 8>& state, const std::uint8_t* data, std::size_t blocks)
{
#ifdef GA_SHA_NI_BUILD
    static const bool accelerated = detect_sha_ni();
    if (accelerated) {
        compress_sha_ni(state, data, blocks);
        return;
    }
#endif
    compress_portable(state, data, blocks);
}

} // namespace detail

bool sha256_accelerated()
{
#ifdef GA_SHA_NI_BUILD
    static const bool accelerated = detect_sha_ni();
    return accelerated;
#else
    return false;
#endif
}

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19},
      buffer_{}
{
}

void Sha256::update(const std::uint8_t* data, std::size_t len)
{
    common::ensure(!finished_, "Sha256::update after finish");
    total_bits_ += static_cast<std::uint64_t>(len) * 8;

    // Top up a partially filled block first.
    if (buffered_ != 0) {
        const std::size_t take = std::min(len, buffer_.size() - buffered_);
        std::memcpy(buffer_.data() + buffered_, data, take);
        buffered_ += take;
        data += take;
        len -= take;
        if (buffered_ == buffer_.size()) {
            detail::compress(state_, buffer_.data(), 1);
            buffered_ = 0;
        }
    }
    // Whole blocks straight from the input, no buffering.
    if (len >= 64) {
        const std::size_t blocks = len / 64;
        detail::compress(state_, data, blocks);
        data += blocks * 64;
        len -= blocks * 64;
    }
    if (len > 0) {
        std::memcpy(buffer_.data(), data, len);
        buffered_ = len;
    }
}

Digest Sha256::finish()
{
    common::ensure(!finished_, "Sha256::finish called twice");

    // Padding: 0x80, zeros to 56 mod 64, then the message length in bits
    // (big-endian) — assembled in one or two tail blocks, compressed at once.
    std::array<std::uint8_t, 128> tail{};
    std::memcpy(tail.data(), buffer_.data(), buffered_);
    tail[buffered_] = 0x80;
    const std::size_t tail_len = buffered_ < 56 ? 64 : 128;
    for (int i = 0; i < 8; ++i) {
        tail[tail_len - 8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(total_bits_ >> (56 - 8 * i));
    }
    detail::compress(state_, tail.data(), tail_len / 64);
    buffered_ = 0;
    finished_ = true;

    Digest digest;
    for (std::size_t i = 0; i < state_.size(); ++i) {
        digest[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return digest;
}

Digest sha256(const common::Bytes& data)
{
    Sha256 ctx;
    ctx.update(data);
    return ctx.finish();
}

std::string digest_hex(const Digest& digest)
{
    return common::to_hex(common::Bytes{digest.begin(), digest.end()});
}

common::Bytes digest_bytes(const Digest& digest)
{
    return common::Bytes{digest.begin(), digest.end()};
}

} // namespace ga::crypto
