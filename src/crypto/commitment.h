// Hash commitments (Blum-style bit/byte commitment over SHA-256).
//
// §3.3: agents announce a commitment to their chosen action without revealing
// it, so all choices are private and simultaneous; after all commitments are
// agreed upon (via Byzantine agreement), agents open them. Binding comes from
// collision resistance, hiding from the 256-bit random nonce.
#ifndef GA_CRYPTO_COMMITMENT_H
#define GA_CRYPTO_COMMITMENT_H

#include "common/rng.h"
#include "crypto/sha256.h"

namespace ga::crypto {

/// The public half of a commitment: a digest of (nonce || payload).
struct Commitment {
    Digest digest{};

    friend bool operator==(const Commitment&, const Commitment&) = default;
};

/// The private half: what the committer must present to open.
struct Opening {
    common::Bytes nonce;   ///< 32 random bytes
    common::Bytes payload; ///< the committed value
};

/// Result of committing to `payload`; nonce drawn from `rng`.
struct Committed {
    Commitment commitment;
    Opening opening;
};

/// Commit to a payload with a fresh 256-bit nonce.
Committed commit(const common::Bytes& payload, common::Rng& rng);

/// Recompute the digest for an opening (deterministic).
Commitment recommit(const Opening& opening);

/// True iff `opening` opens `commitment`.
bool verify(const Commitment& commitment, const Opening& opening);

/// Wire encoding helpers (commitments and openings travel inside BA payloads).
common::Bytes encode(const Commitment& commitment);
Commitment decode_commitment(common::Byte_reader& reader);
common::Bytes encode(const Opening& opening);
Opening decode_opening(common::Byte_reader& reader);

} // namespace ga::crypto

#endif // GA_CRYPTO_COMMITMENT_H
