#include "crypto/hmac.h"

namespace ga::crypto {

Digest hmac_sha256(const common::Bytes& key, const common::Bytes& message)
{
    constexpr std::size_t block_size = 64;

    common::Bytes key_block = key;
    if (key_block.size() > block_size) {
        const Digest hashed = sha256(key_block);
        key_block.assign(hashed.begin(), hashed.end());
    }
    key_block.resize(block_size, 0x00);

    common::Bytes inner;
    inner.reserve(block_size + message.size());
    for (const std::uint8_t byte : key_block) inner.push_back(byte ^ 0x36);
    inner.insert(inner.end(), message.begin(), message.end());
    const Digest inner_digest = sha256(inner);

    common::Bytes outer;
    outer.reserve(block_size + inner_digest.size());
    for (const std::uint8_t byte : key_block) outer.push_back(byte ^ 0x5c);
    outer.insert(outer.end(), inner_digest.begin(), inner_digest.end());
    return sha256(outer);
}

std::uint64_t prf_u64(const common::Bytes& seed, std::uint64_t label, std::uint64_t counter)
{
    common::Bytes message;
    common::put_u64(message, label);
    common::put_u64(message, counter);
    const Digest mac = hmac_sha256(seed, message);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) value |= static_cast<std::uint64_t>(mac[static_cast<std::size_t>(i)]) << (8 * i);
    return value;
}

} // namespace ga::crypto
