// Batched play pipeline: k plays agreed per BA activation.
//
// The scenario: one 5-computer game authority runs the §3.3 protocol in
// pipelined mode with k = 8. Each batch costs the same 4-phase clock period
// as ONE classic play — the agents seal their next 8 action commitments
// under a Merkle root (one IC activation agrees on all the roots), reveal
// the whole opening vectors in a second activation, and the batch-edge audit
// defers every verdict to the window edge, §5.3-style. One agent equivocates
// inside its sealed vector — opening a different action than it committed at
// batch position 3 — and is caught exactly at the edge: detection delayed by
// at most one window, never lost.
#include <iostream>

#include "pipeline/pipeline_authority.h"

using namespace ga;
using namespace ga::pipeline;

namespace {

/// Two-action game with a dominant action (1): deviating to 0 is never a
/// best response.
class Dominant_game final : public game::Strategic_game {
public:
    explicit Dominant_game(int n) : n_{n} {}
    int n_agents() const override { return n_; }
    int n_actions(common::Agent_id) const override { return 2; }
    double cost(common::Agent_id i, const game::Pure_profile& p) const override
    {
        return p[static_cast<std::size_t>(i)] == 1 ? 1.0 : 2.0;
    }

private:
    int n_;
};

} // namespace

int main()
{
    const int n = 5;
    const int k = 8;

    authority::Game_spec spec;
    spec.name = "dominant-pipelined";
    spec.game = std::make_shared<Dominant_game>(n);
    spec.equilibrium.assign(static_cast<std::size_t>(n), {0.0, 1.0});

    std::vector<std::unique_ptr<authority::Agent_behavior>> behaviors;
    for (int i = 0; i < n; ++i) behaviors.push_back(std::make_unique<authority::Honest_behavior>());

    // Agent 2 is two-faced inside the window: its sealed vector is honest,
    // but at position 3 it opens a fresh commitment to the dominated action.
    Pipeline_authority authority{
        spec,     1,  k,  std::move(behaviors), {},
        [] { return std::make_unique<authority::Disconnect_scheme>(); },
        common::Rng{2026}, {}, {}, {{2, Tamper{3, 0}}}};

    std::cout << "=== Batched play pipeline (k = " << k << " plays per activation) ===\n\n"
              << "pulses per batch = " << authority.pulses_per_batch()
              << " (a classic play costs the same period for ONE play)\n\n";

    authority.run_pulses(1);
    authority.run_batches(2);

    const auto& plays = authority.agreed_plays();
    std::cout << "after 2 batches: " << plays.size() << " agreed plays\n";
    for (std::size_t p = 0; p < plays.size(); ++p) {
        std::cout << "  play " << p << ": outcome = [";
        for (std::size_t i = 0; i < plays[p].outcome.size(); ++i) {
            std::cout << (i > 0 ? " " : "") << plays[p].outcome[i];
        }
        std::cout << "]";
        if (!plays[p].punished.empty()) std::cout << "  <- batch edge: agent 2 flagged";
        std::cout << "\n";
    }

    std::cout << "agent 2 fouls = " << authority.agreed_standings()[2].fouls
              << ", disconnected = " << (authority.is_agent_disconnected(2) ? "yes" : "no")
              << "\n";

    // ---- The checks that make this example a smoke test.
    if (plays.size() != static_cast<std::size_t>(2 * k)) return 1;
    // Detection waits for the first window edge...
    for (std::size_t p = 0; p + 1 < static_cast<std::size_t>(k); ++p) {
        if (!plays[p].punished.empty()) return 1;
    }
    // ...then lands exactly there.
    if (plays[static_cast<std::size_t>(k - 1)].punished != std::vector<common::Agent_id>{2})
        return 1;
    if (authority.agreed_standings()[2].fouls != 1) return 1;
    if (!authority.is_agent_disconnected(2)) return 1;
    for (const common::Agent_id honest : {0, 1, 3, 4}) {
        if (authority.agreed_standings()[static_cast<std::size_t>(honest)].fouls != 0) return 1;
    }
    std::cout << "OK: the equivocator was caught at the window edge; honest agents untouched.\n";
    return 0;
}
