// Governance walkthrough (§3.1's re-election extension): the society's
// preferences change over time, the game is re-elected every era, and a
// cheater expelled in one era stays out of all later ones.
#include <iostream>

#include "authority/governance.h"
#include "game/canonical.h"

using namespace ga;
using namespace ga::authority;

namespace {

Game_spec candidate_pd()
{
    Game_spec spec;
    spec.name = "prisoners-dilemma";
    spec.game = std::make_shared<game::Matrix_game>(game::prisoners_dilemma());
    spec.equilibrium = {{0.0, 1.0}, {0.0, 1.0}};
    spec.audit_mode = Audit_mode::pure_best_response;
    return spec;
}

Game_spec candidate_coordination()
{
    Game_spec spec;
    spec.name = "coordination";
    spec.game = std::make_shared<game::Matrix_game>(game::coordination_game());
    spec.equilibrium = {{1.0, 0.0}, {1.0, 0.0}};
    spec.audit_mode = Audit_mode::pure_best_response;
    return spec;
}

} // namespace

int main()
{
    const std::vector<std::string> names{"prisoners-dilemma", "coordination"};

    // Agents start out preferring the dilemma, then (era 2 onward) everyone
    // has learned to prefer coordination. Agent 1 cheats during era 0.
    Governance governance{
        {candidate_pd(), candidate_coordination()},
        /*rounds_per_era=*/6,
        Voting_rule::borda,
        [](common::Agent_id, int era) {
            return era < 2 ? Ballot{0, {0, 1}} : Ballot{0, {1, 0}};
        },
        [](common::Agent_id agent, int era) -> std::unique_ptr<Agent_behavior> {
            if (agent == 1 && era == 0) {
                return std::make_unique<Fixed_action_behavior>(0); // cooperate: foul in PD
            }
            return std::make_unique<Honest_behavior>();
        },
        [] { return std::make_unique<Disconnect_scheme>(); },
        common::Rng{42}};

    for (int era = 0; era < 4; ++era) {
        const Era_report report = governance.run_era();
        std::cout << "era " << report.era << ": elected "
                  << names[static_cast<std::size_t>(report.elected_candidate)] << ", "
                  << report.rounds_played << " plays, " << report.fouls << " fouls; active agents "
                  << governance.active_count() << "/2\n";
    }

    std::cout << "\nstandings after 4 eras:\n";
    for (common::Agent_id i = 0; i < 2; ++i) {
        const Standing& s = governance.standings()[static_cast<std::size_t>(i)];
        std::cout << "  agent " << i << ": active=" << (s.active ? "yes" : "no")
                  << " fouls=" << s.fouls << " cumulative cost=" << s.cumulative_cost << '\n';
    }
    std::cout << "\nThe cheater was expelled during era 0 and never returned; the elected\n"
                 "game switched with the society's preferences at era 2 (§3.1's repeated\n"
                 "re-election, with power separation intact).\n";
    return 0;
}
