// Quickstart: elect a game, let the authority supervise it, watch a cheater
// get caught.
//
// The scenario is the paper's own (Fig. 1): matching pennies where agent B
// secretly added a "Manipulate" strategy. The honest majority elects the
// (1/2, 1/2) mixed equilibrium; agents commit to PRNG seeds (§5.3); the
// judicial service replays every revealed action against the committed seed
// and the executive disconnects the manipulator.
#include <iostream>

#include "authority/legislative.h"
#include "authority/local_authority.h"
#include "game/canonical.h"

using namespace ga;
using namespace ga::authority;

int main()
{
    // ---- 1. The legislative service: the society elects the game (§3.1).
    // Candidates: plain matching pennies vs a variant someone proposed.
    Legislative_service legislative{2};
    const std::vector<Ballot> ballots{
        {0, {0, 1}}, {1, {0, 1}}, {2, {1, 0}}, {3, {0}}, {4, {0, 1}},
    };
    const Election_result election = legislative.elect(ballots, Voting_rule::borda);
    std::cout << "Elected game candidate #" << election.winner << " ("
              << election.valid_ballots << " valid ballots)\n";

    // ---- 2. The elected game specification.
    Game_spec spec;
    spec.name = "matching-pennies-fig1";
    spec.game = std::make_shared<game::Matrix_game>(game::manipulated_matching_pennies());
    spec.equilibrium = {{0.5, 0.5}, {0.5, 0.5, 0.0}}; // B's lawful actions: Heads/Tails
    spec.audit_mode = Audit_mode::mixed_seed;

    // ---- 3. Agents: A is honest; B plays the hidden Manipulate strategy.
    std::vector<std::unique_ptr<Agent_behavior>> agents;
    agents.push_back(std::make_unique<Honest_behavior>());
    agents.push_back(std::make_unique<Fixed_action_behavior>(game::mp_manipulate));

    // ---- 4. The authority: judicial audit + executive disconnection (§3.2-3.4).
    Local_authority authority{spec, std::move(agents), std::make_unique<Disconnect_scheme>(),
                              common::Rng{2024}};

    // ---- 5. Play.
    for (int round = 0; round < 5; ++round) {
        const Round_report report = authority.play_round();
        std::cout << "play " << round << ": revealed = (";
        for (std::size_t i = 0; i < report.revealed.size(); ++i)
            std::cout << (i ? "," : "") << report.revealed[i];
        std::cout << ")";
        for (const Verdict& v : report.verdicts) {
            if (v.offence != Offence::none)
                std::cout << "  -> agent " << v.agent << " foul: " << offence_name(v.offence);
        }
        if (report.suspended) std::cout << "  [game suspended: agent set broken]";
        std::cout << '\n';
    }

    // ---- 6. The executive ledger.
    std::cout << "\nledger:\n";
    for (common::Agent_id i = 0; i < 2; ++i) {
        const Standing& s = authority.executive().standing(i);
        std::cout << "  agent " << i << ": active=" << (s.active ? "yes" : "no")
                  << " fouls=" << s.fouls << " cumulative game cost=" << s.cumulative_cost
                  << '\n';
    }
    std::cout << "\nThe manipulator was caught on its first deviation: the revealed action\n"
                 "did not match the committed seed's sample of the elected mixture (§5.3).\n";
    return 0;
}
