// Price-of-malice walkthrough on the virus-inoculation game ([21]).
//
// A grid of machines each decide whether to buy anti-virus protection.
// Byzantine machines lie — they claim protection they don't have, so their
// honest neighbours under-protect. Without the game authority the honest
// players' realized cost climbs with every liar; with it, the lie is detected
// (the claimed action is audited against reality) and the liars are cut off.
#include <iostream>

#include "common/table.h"
#include "game/analysis.h"
#include "game/virus_inoculation.h"
#include "metrics/pom.h"

using namespace ga;

int main()
{
    const int rows = 8;
    const int cols = 8;
    const double inoculation_cost = 1.0;
    const double loss = 4.0;

    std::cout << "Virus inoculation on an " << rows << "x" << cols << " grid (C="
              << inoculation_cost << ", L=" << loss << ").\n\n";

    // The honest-only equilibrium, for orientation.
    const sim::Graph grid = sim::grid_graph(rows, cols);
    const game::Virus_inoculation_game game{&grid, inoculation_cost, loss};
    const game::Pure_profile eq = game.best_response_equilibrium();
    int protectors = 0;
    for (const int a : eq) protectors += a == game::vi_inoculate ? 1 : 0;
    std::cout << "All-selfish equilibrium: " << protectors << "/" << rows * cols
              << " machines inoculate; social cost = "
              << game::social_cost(game, eq) << ".\n\n";

    metrics::Pom_config config;
    config.rows = rows;
    config.cols = cols;
    config.inoculation_cost = inoculation_cost;
    config.loss = loss;
    config.trials = 6;

    common::Rng rng_off{5};
    common::Rng rng_on{6};
    const auto off = metrics::pom_curve(config, 6, /*with_authority=*/false, rng_off);
    const auto on = metrics::pom_curve(config, 6, /*with_authority=*/true, rng_on);

    common::Table table{{"liars", "PoM without authority", "PoM with authority"}};
    for (std::size_t b = 0; b < off.size(); ++b) {
        table.add_row({std::to_string(off[b].byzantine), common::fixed(off[b].pom, 3),
                       common::fixed(on[b].pom, 3)});
    }
    table.print(std::cout);

    std::cout << "\nWith the authority, every liar is exposed by the audit and disconnected\n"
                 "(§3.4); the honest players re-equilibrate among themselves and the price\n"
                 "of malice stays at ~1 (§5.4).\n";
    return 0;
}
