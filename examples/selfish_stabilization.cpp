// Self(ish)-stabilization demo (§4): the distributed game authority keeps
// working through a transient fault that scrambles every processor's state.
//
// Four processors run the full §3.3 play pipeline (clock-scheduled EIG
// activations) over the simulator. Mid-run, a transient fault randomizes
// clocks and replicated state; the self-stabilizing clock re-synchronizes,
// the next wrap starts a clean play, and the replicas agree again.
#include <iostream>

#include "authority/distributed_authority.h"

using namespace ga;
using namespace ga::authority;

namespace {

/// Minority game: your cost is the number of agents that chose your action —
/// best responses genuinely depend on the previous outcome.
class Minority_game final : public game::Strategic_game {
public:
    explicit Minority_game(int n) : n_{n} {}
    int n_agents() const override { return n_; }
    int n_actions(common::Agent_id) const override { return 2; }
    double cost(common::Agent_id i, const game::Pure_profile& profile) const override
    {
        int same = 0;
        for (const int a : profile)
            if (a == profile[static_cast<std::size_t>(i)]) ++same;
        return static_cast<double>(same);
    }

private:
    int n_;
};

} // namespace

int main()
{
    const int n = 4;
    const int f = 1;

    Game_spec spec;
    spec.name = "minority";
    spec.game = std::make_shared<Minority_game>(n);
    spec.equilibrium.assign(static_cast<std::size_t>(n), {1.0, 0.0});
    spec.audit_mode = Audit_mode::pure_best_response;

    std::vector<std::unique_ptr<Agent_behavior>> behaviors;
    for (int i = 0; i < n; ++i) behaviors.push_back(std::make_unique<Honest_behavior>());

    Distributed_authority authority{
        spec, f, std::move(behaviors), {},
        [] { return std::make_unique<Fine_scheme>(1.0, 1e9); }, common::Rng{3}};

    std::cout << "Distributed game authority: n=" << n << ", f=" << f << ", "
              << authority.pulses_per_play() << " pulses per play (4 EIG activations).\n\n";

    authority.run_pulses(1 + 3 * authority.pulses_per_play());
    std::cout << "After 3 plays: processor 0 completed "
              << authority.processor(0).plays().size() << " plays.\n";

    std::cout << "\n>>> transient fault: all clocks and replicated state randomized <<<\n\n";
    authority.inject_transient_fault();

    // Watch the clocks re-synchronize.
    int pulses = 0;
    const auto clocks = [&] {
        std::string s;
        for (const auto id : authority.honest_slots()) {
            if (!s.empty()) s += ' ';
            s += std::to_string(authority.processor(id).clock());
        }
        return s;
    };
    const auto agree = [&] {
        int v = -1;
        for (const auto id : authority.honest_slots()) {
            const int c = authority.processor(id).clock();
            if (v < 0) v = c;
            if (c != v) return false;
        }
        return true;
    };
    std::cout << "clock values right after the fault: [" << clocks() << "]\n";
    while (!agree() && pulses < 300000) {
        authority.run_pulses(1);
        ++pulses;
        if (pulses <= 5 || pulses % 50 == 0)
            std::cout << "  pulse +" << pulses << ": [" << clocks() << "]\n";
    }
    std::cout << "clocks re-synchronized after " << pulses << " pulses: [" << clocks() << "]\n";

    // Run three more plays and confirm the replicas agree again. The play
    // *logs* may be offset by one garbled in-flight play from the fault, but
    // in steady state replicas complete plays at identical pulses — so the
    // tails of the logs must match exactly.
    const std::size_t before = authority.processor(0).plays().size();
    authority.run_pulses((3 + 1) * authority.pulses_per_play());
    const auto& reference = authority.processor(0).plays();
    constexpr std::size_t tail = 3;
    bool replicas_agree = reference.size() >= tail;
    for (const auto id : authority.honest_slots()) {
        const auto& plays = authority.processor(id).plays();
        if (plays.size() < tail) {
            replicas_agree = false;
            break;
        }
        for (std::size_t t = 1; t <= tail && replicas_agree; ++t) {
            replicas_agree &= plays[plays.size() - t].outcome ==
                              reference[reference.size() - t].outcome;
            replicas_agree &= plays[plays.size() - t].completed_at ==
                              reference[reference.size() - t].completed_at;
        }
    }
    std::cout << "\nplays completed after recovery: " << reference.size() - before
              << "; replicas agree on the last " << tail
              << " plays (outcomes and completion pulses): "
              << (replicas_agree ? "yes" : "NO") << '\n';
    std::cout << "\nThis is Theorem 1 end-to-end: self-stabilizing clock sync + Byzantine\n"
                 "agreement = a game authority that survives arbitrary transient faults.\n";
    return 0;
}
