// The §6 scenario: a consortium of Internet companies shares licenses for
// advertisement clips on video web sites. Every round each company places one
// demand on a hosting resource; loads are public after each round; everyone
// is selfish about service time. Under game-authority supervision the agents
// are forced to play the simple load-only rules the majority elected, and the
// multi-round anarchy cost provably collapses to 1 (Theorem 5).
#include <iostream>

#include "common/table.h"
#include "game/resource_allocation.h"
#include "metrics/anarchy.h"

using namespace ga;

int main()
{
    constexpr int companies = 12; // consortium members
    constexpr int hosts = 4;      // licensed video hosts

    std::cout << "RRA consortium: " << companies << " companies, " << hosts
              << " hosting providers, supervised by the game authority.\n\n";

    // One concrete run, narrated.
    game::Rra_process process{companies, hosts, game::Rra_rule::symmetric_mixed,
                              common::Rng{77}};
    std::cout << "First five rounds (loads after each round):\n";
    for (int k = 1; k <= 5; ++k) {
        process.play_round();
        std::cout << "  round " << k << ": loads = [";
        for (std::size_t a = 0; a < process.loads().size(); ++a)
            std::cout << (a ? ", " : "") << process.loads()[a];
        std::cout << "]  spread=" << process.spread() << " (Lemma 6 cap "
                  << 2 * companies - 1 << ")\n";
    }

    // The multi-round anarchy cost trajectory.
    metrics::Anarchy_config config;
    config.agents = companies;
    config.bins = hosts;
    config.rule = game::Rra_rule::symmetric_mixed;
    config.trials = 8;
    common::Rng rng{78};
    const auto series = metrics::rra_anarchy_series(config, {1, 4, 16, 64, 256, 1024}, rng);

    std::cout << "\nMulti-round anarchy cost R(k) (Theorem 5: R(k) <= 1 + 2b/k, R -> 1):\n";
    common::Table table{{"k", "mean R(k)", "bound 1+2b/k", "max spread"}};
    for (const auto& point : series) {
        table.add_row({std::to_string(point.k), common::fixed(point.mean_ratio, 4),
                       common::fixed(point.bound, 4), std::to_string(point.max_spread)});
    }
    table.print(std::cout);

    std::cout << "\nBecause the authority guarantees everyone plays by the elected load-only\n"
                 "rules, the consortium can adopt the simplest selection criterion (backlog\n"
                 "size) and still get asymptotically optimal host utilization — the paper's\n"
                 "argument for letting the honest majority pick simple, predictable games.\n";
    return 0;
}
