// Sharded authority fabric: one game authority per region, many regions
// supervised concurrently, one routing front-end over all of them.
//
// The scenario: a 12-computer system split into 3 regions of 4. Each region
// runs its own distributed game authority (its own BFT replica group and
// clock, §3.3 play pipeline unchanged); the fabric steps the three groups on
// a thread pool and the router answers every question in *global* agent ids.
// One agent (global #5) plays a hidden manipulative strategy — its region's
// judicial service catches it, its region's executive expels it, and the
// other regions never spend a message on the affair.
#include <iostream>

#include "shard/fabric.h"

using namespace ga;
using namespace ga::shard;

namespace {

/// Two-action region game with a dominant action (1): deviating to 0 is
/// never a best response, so the judicial replicas flag it as a foul.
class Region_game final : public game::Strategic_game {
public:
    explicit Region_game(int n) : n_{n} {}
    int n_agents() const override { return n_; }
    int n_actions(common::Agent_id) const override { return 2; }
    double cost(common::Agent_id i, const game::Pure_profile& p) const override
    {
        return p[static_cast<std::size_t>(i)] == 1 ? 1.0 : 2.0;
    }

private:
    int n_;
};

} // namespace

int main()
{
    const int agents = 12;
    const int regions = 3;

    // ---- 1. The shard map: contiguous blocks = per-region sharding.
    Shard_map map{agents, regions, assign_contiguous()};
    std::cout << "Fabric: " << agents << " agents across " << regions << " regions, sizes =";
    for (const int size : map.shard_sizes()) std::cout << ' ' << size;
    std::cout << "\n";

    // ---- 2. The global population; global agent 5 cheats.
    std::vector<std::unique_ptr<authority::Agent_behavior>> population;
    for (int g = 0; g < agents; ++g) {
        if (g == 5) {
            population.push_back(std::make_unique<authority::Fixed_action_behavior>(0));
        } else {
            population.push_back(std::make_unique<authority::Honest_behavior>());
        }
    }

    // ---- 3. The fabric: one Distributed_authority per region, stepped on a
    // 3-thread pool; every region's randomness derives from the fabric seed.
    Fabric_config config;
    config.f = 1;
    config.spec_factory = [](int shard, const std::vector<common::Agent_id>& members) {
        authority::Game_spec spec;
        spec.name = "region-" + std::to_string(shard);
        spec.game = std::make_shared<Region_game>(static_cast<int>(members.size()));
        spec.equilibrium.assign(members.size(), {0.0, 1.0});
        return spec;
    };
    config.punishment = [] { return std::make_unique<authority::Disconnect_scheme>(); };
    config.seed = 2026;
    config.threads = 3;
    Fabric fabric{std::move(map), std::move(population), std::move(config)};

    // ---- 4. Supervised play: every region completes 3 plays concurrently.
    fabric.run_pulses(1);
    fabric.run_plays(3);

    // ---- 5. The router answers in global ids: where does 5 live, what did
    // it play, what happened to it?
    const auto route = fabric.router().locate(5);
    std::cout << "agent 5 lives on shard " << route.shard << " as local agent " << route.local
              << "\n";
    for (const auto& play : fabric.router().plays_of(5)) {
        std::cout << "  play at pulse " << play.completed_at << ": action = " << play.action
                  << (play.punished ? "  [punished]" : "") << "\n";
    }
    std::cout << "agent 5 fouls = " << fabric.router().standing(5).fouls
              << ", disconnected = " << (fabric.router().is_disconnected(5) ? "yes" : "no")
              << "\n";

    // ---- 6. Fabric-level aggregation across the regions.
    const metrics::Fabric_metrics report = fabric.report();
    std::cout << "fabric report: " << report.total_plays << " plays over " << report.shards
              << " shards, " << report.total_traffic.messages << " messages, fouls = "
              << report.total_fouls << ", expelled = " << report.total_disconnected;
    if (report.price_of_anarchy.has_value()) {
        std::cout << ", anarchy ratio = " << *report.price_of_anarchy;
    }
    std::cout << "\n";

    // ---- 7. The checks that make this example a smoke test.
    if (!fabric.router().is_disconnected(5)) return 1;
    if (fabric.router().punished_agents() != std::vector<common::Agent_id>{5}) return 1;
    if (report.min_shard_plays < 2) return 1;
    if (fabric.shard(0).disconnected_agents() != std::vector<common::Agent_id>{}) return 1;
    std::cout << "OK: the cheater's region expelled it; the other regions never noticed.\n";
    return 0;
}
